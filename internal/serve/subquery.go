package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"time"

	"st4ml/internal/stdata"
	"st4ml/internal/summary"
	"st4ml/internal/trace"
)

// This file is the shard side of the cluster protocol: POST /subquery
// executes a window query restricted to an explicit partition subset — the
// slice of the dataset a router's rendezvous hash assigned to this shard —
// and returns per-partition result chunks the router merges exactly-once.
//
// Generation fencing: the router plans a scatter at one dataset generation
// (the delta manifest's counter plus the record count as a weak
// fingerprint) and stamps it on every sub-query. A shard whose view has
// moved — a compaction or append committed mid-scatter — answers 409
// instead of silently mixing generations inside one merged response; the
// router re-plans from fresh metadata.

// SubQueryRequest is the POST /subquery body: a QueryRequest plus the
// partition subset to execute and the generation fence.
type SubQueryRequest struct {
	QueryRequest
	// Partitions is the partition subset to execute (already pruned by the
	// router). Nil prunes locally from the window.
	Partitions []int `json:"partitions"`
	// Gen and Count fence the dataset generation: Gen is the delta
	// manifest generation the router planned at (0 when the dataset has no
	// delta layer) and Count the total record count it saw.
	Gen   int64 `json:"gen"`
	Count int64 `json:"count"`
}

// subKey is the sub-query result-cache key. It embeds both the catalog
// generation (gen — bumped by any observed reload) and the wire fence, so
// a shard that compacts mid-stream can never serve a stale chunk.
func (q SubQueryRequest) subKey(gen int64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, id := range q.Partitions {
		binary.LittleEndian.PutUint64(buf[:], uint64(id))
		h.Write(buf[:])
	}
	key := fmt.Sprintf("sub|%s|%d|%d,%d|%v,%v,%v,%v|%d,%d|%t,%d|%x",
		q.Dataset, gen, q.Gen, q.Count,
		q.MinX, q.MinY, q.MaxX, q.MaxY, q.TStart, q.TEnd,
		q.Records, q.Limit, h.Sum64())
	if q.Approx {
		key += fmt.Sprintf("|approx:%s,%v,%d,%t", q.Agg, q.Q, q.Res, q.ApproxScan)
	}
	return key
}

// SubQueryResponse is the POST /subquery reply: per-partition chunks at
// the fenced generation, plus the shard's span dump when the request was
// traced (the router grafts it under its RPC span).
type SubQueryResponse struct {
	Shard     string              `json:"shard,omitempty"`
	Gen       int64               `json:"gen"`
	Count     int64               `json:"count"`
	Cache     string              `json:"cache"`
	ElapsedMS float64             `json:"elapsed_ms"`
	Parts     []stdata.PartResult `json:"parts"`
	// Approx is the shard's mergeable partial envelope (approx=true
	// sub-queries); the router merges all shards' partials and finalizes.
	Approx *summary.Partial `json:"approx,omitempty"`
	Spans  []trace.WireSpan `json:"spans,omitempty"`
}

// errDraining is the refusal a draining daemon answers new work with.
var errDraining = errors.New("serve: draining")

func (s *Server) handleSubquery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	var req SubQueryRequest
	if err := readJSONBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("explain") == "1" {
		req.Explain = true
	}
	s.subqueries.Add(1)
	resp, status, err := s.runSubquery(r.Context(), req)
	if err != nil {
		if status >= http.StatusInternalServerError && status != http.StatusGatewayTimeout {
			s.queryErrors.Add(1)
		}
		writeError(w, status, err)
		return
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// runSubquery resolves, fences, admits, and executes one sub-query.
func (s *Server) runSubquery(reqCtx context.Context, req SubQueryRequest) (SubQueryResponse, int, error) {
	d, ok := s.catalog.Get(req.Dataset)
	if !ok {
		return SubQueryResponse{}, http.StatusNotFound,
			fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	meta, gen, err := d.Meta()
	if err != nil {
		return SubQueryResponse{}, http.StatusInternalServerError, err
	}
	s.noteGeneration(req.Dataset, gen)
	if meta.Generation != req.Gen || meta.TotalCount != req.Count {
		s.genConflicts.Add(1)
		return SubQueryResponse{}, http.StatusConflict,
			fmt.Errorf("generation conflict: shard sees gen %d (%d records), sub-query fenced at gen %d (%d records)",
				meta.Generation, meta.TotalCount, req.Gen, req.Count)
	}

	var tr *trace.Tracer
	if req.Explain {
		tr = trace.New()
	}
	root := tr.StartSpan(0, trace.SpanSubquery,
		trace.Str("dataset", req.Dataset),
		trace.Str("shard", s.shardName),
		trace.Int("partitions", int64(len(req.Partitions))))
	resp := SubQueryResponse{Shard: s.shardName, Gen: meta.Generation, Count: meta.TotalCount}

	key := req.subKey(gen)
	if !req.NoCache {
		lsp := root.Child(trace.SpanResultLookup)
		v, ok := s.cache.Get(key)
		lsp.End(trace.Bool("hit", ok))
		if ok {
			s.resultHits.Add(1)
			root.End()
			resp.Cache = "hit"
			if req.Approx {
				resp.Approx = v.(*summary.Partial)
			} else {
				resp.Parts = v.([]stdata.PartResult)
			}
			resp.Spans = trace.ToWire(tr.Snapshot())
			return resp, http.StatusOK, nil
		}
	}
	s.resultMisses.Add(1)

	ctx, cancel := context.WithTimeout(reqCtx, s.timeout)
	defer cancel()
	asp := root.Child(trace.SpanAdmission)
	release, err := s.adm.Acquire(ctx)
	asp.End(trace.Bool("acquired", err == nil))
	if errors.Is(err, ErrBusy) {
		root.End(trace.Str("error", err.Error()))
		return SubQueryResponse{}, http.StatusTooManyRequests, err
	}
	if err != nil {
		s.timeouts.Add(1)
		root.End(trace.Str("error", err.Error()))
		return SubQueryResponse{}, http.StatusGatewayTimeout, err
	}

	ectx := s.ctx.WithTracer(tr, root.ID())
	parts := req.Partitions
	if parts == nil {
		parts = []int{}
	}
	type outcome struct {
		res    stdata.QueryResult
		approx *summary.Partial
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		if req.Approx {
			_, p, err := d.Schema.ApproxQuery(ectx, d.Dir, meta, req.Window(), stdata.ApproxRequest{
				Agg: req.Agg, Q: req.Q, Res: req.Res, ScanBoundary: req.ApproxScan,
				Partitions: parts, Partial: true,
			})
			if err == nil && !req.NoCache {
				s.cache.Put(key, p, approxBytes(nil, len(p.Parts))+int64(len(p.CellLo))*24)
			}
			done <- outcome{approx: p, err: err}
			return
		}
		res, err := d.Schema.ServeQuery(ectx, d.Dir, meta, s.fetcher(d, meta, gen, ectx), req.Window(),
			stdata.QueryOptions{Records: req.Records, Limit: req.Limit,
				Partitions: parts, PerPartition: true})
		if err == nil && !req.NoCache {
			s.cache.Put(key, res.Parts, partsBytes(res.Parts))
		}
		done <- outcome{res: res, err: err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			root.End(trace.Str("error", out.err.Error()))
			return SubQueryResponse{}, http.StatusInternalServerError, out.err
		}
		if req.Approx {
			root.End(trace.Int("approx_count_hi", out.approx.CountHi))
			resp.Cache = "miss"
			resp.Approx = out.approx
			resp.Spans = trace.ToWire(tr.Snapshot())
			return resp, http.StatusOK, nil
		}
		var selected int64
		for _, pr := range out.res.Parts {
			selected += pr.Selected
		}
		root.End(trace.Int("selected", selected))
		resp.Cache = "miss"
		resp.Parts = out.res.Parts
		resp.Spans = trace.ToWire(tr.Snapshot())
		return resp, http.StatusOK, nil
	case <-ctx.Done():
		s.timeouts.Add(1)
		return SubQueryResponse{}, http.StatusGatewayTimeout,
			fmt.Errorf("serve: sub-query exceeded the %s deadline", s.timeout)
	}
}

// partsBytes estimates a cached chunk set's resident size.
func partsBytes(parts []stdata.PartResult) int64 {
	n := int64(128)
	for _, pr := range parts {
		n += 48
		for _, rec := range pr.Records {
			n += int64(len(rec)) + 24
		}
	}
	return n
}
