package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// ingestNYC writes a synthetic NYC event dataset and returns its directory.
func ingestNYC(t *testing.T, ctx *engine.Context, n int) string {
	t.Helper()
	dir := t.TempDir()
	sch, _ := stdata.Lookup("nyc")
	if _, err := sch.Ingest(ctx, datagen.NYC(n, 1), dir, sch.DefaultPlanner(4, 4),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// nycWindows returns w distinct query windows over the NYC extent and 2013.
func nycWindows(w int) []QueryRequest {
	year := datagen.Year2013
	span := year.End - year.Start
	out := make([]QueryRequest, w)
	for i := range out {
		// Slide a quarter-extent box across the city and a 2-month window
		// across the year.
		fx := float64(i) / float64(w)
		t0 := year.Start + int64(fx*float64(span))/2
		out[i] = QueryRequest{
			Dataset: "nyc",
			MinX:    -74.05 + fx*0.1, MinY: 40.6 + fx*0.1,
			MaxX: -73.95 + fx*0.1, MaxY: 40.75 + fx*0.1,
			TStart: t0, TEnd: t0 + span/6,
			Records: true,
		}
	}
	return out
}

func postQuery(t *testing.T, url string, req QueryRequest) (*QueryResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func getMetrics(t *testing.T, url string) MetricsResponse {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServedMatchesDirectSelection checks the acceptance core: served
// results are byte-identical to a direct selection.SelectPruned over the
// same dataset and windows, and the stats agree.
func TestServedMatchesDirectSelection(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := ingestNYC(t, ctx, 5000)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sel := selection.New(ctx, stdata.EventRecC, stdata.EventRec.Box, nil,
		selection.Config{Index: true})
	for _, req := range nycWindows(5) {
		res, code := postQuery(t, ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("query status %d", code)
		}
		rdd, stats, err := sel.SelectPruned(dir, req.Window())
		if err != nil {
			t.Fatal(err)
		}
		direct := rdd.Collect()
		if int64(len(direct)) != res.Stats.SelectedRecords {
			t.Fatalf("served %d records, direct selection %d",
				res.Stats.SelectedRecords, len(direct))
		}
		if res.Stats.LoadedPartitions != stats.LoadedPartitions ||
			res.Stats.TotalPartitions != stats.TotalPartitions ||
			res.Stats.LoadedRecords != stats.LoadedRecords {
			t.Errorf("stats diverge: served %+v direct %+v", res.Stats, stats)
		}
		if len(res.Records) != len(direct) {
			t.Fatalf("served %d record bodies, want %d", len(res.Records), len(direct))
		}
		for i, rec := range direct {
			want, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Records[i], want) {
				t.Fatalf("record %d: served %s, direct %s", i, res.Records[i], want)
			}
		}
	}
}

// TestConcurrentHotColdClients drives 10 concurrent clients through mixed
// cold/miss and hot/hit phases and asserts, by counter, that the hot phase
// performs no partition loads at all.
func TestConcurrentHotColdClients(t *testing.T) {
	const clients = 10
	ctx := engine.New(engine.Config{Slots: 4})
	dir := ingestNYC(t, ctx, 4000)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 64 << 20, MaxInFlight: 8, MaxQueue: 256})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	windows := nycWindows(6)

	run := func() {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range windows {
					// Stagger the start so clients interleave hot hits
					// with other clients' cold misses.
					req := windows[(c+i)%len(windows)]
					if _, code := postQuery(t, ts.URL, req); code != http.StatusOK {
						t.Errorf("client %d: status %d", c, code)
					}
				}
			}(c)
		}
		wg.Wait()
	}

	run() // cold phase: every window is a miss at least once
	cold := getMetrics(t, ts.URL)
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Server.PartitionLoads == 0 {
		t.Fatal("cold phase loaded no partitions")
	}
	// Deduplicated loading: each partition is read from disk at most once,
	// no matter how many concurrent clients raced on it.
	if cold.Server.PartitionLoads > int64(meta.NumPartitions()) {
		t.Errorf("cold phase loaded %d partitions, dataset has only %d",
			cold.Server.PartitionLoads, meta.NumPartitions())
	}

	run() // hot phase: everything is a result-cache hit
	hot := getMetrics(t, ts.URL)
	if hot.Server.PartitionLoads != cold.Server.PartitionLoads {
		t.Errorf("hot phase loaded %d more partitions, want 0",
			hot.Server.PartitionLoads-cold.Server.PartitionLoads)
	}
	wantHits := int64(clients * len(windows))
	if got := hot.Server.ResultHits - cold.Server.ResultHits; got < wantHits {
		t.Errorf("hot phase result hits = %d, want >= %d", got, wantHits)
	}
	if hot.Admission.ShedBusy != 0 {
		t.Errorf("unexpected sheds under capacity: %+v", hot.Admission)
	}
}

// TestOverAdmissionSheds429 floods a capacity-1 server with slow queries
// and expects the excess shed immediately with 429 — never queued without
// bound — while admitted queries still succeed.
func TestOverAdmissionSheds429(t *testing.T) {
	ctx := engine.New(engine.Config{
		Slots: 2,
		// Every stage's task 0 is a deterministic 30ms straggler, so each
		// cold query occupies its slot long enough for the flood to pile
		// up behind it.
		Faults: &engine.FaultPlan{DelayTasks: map[int]time.Duration{0: 30 * time.Millisecond}},
	})
	dir := ingestNYC(t, ctx, 1500)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20, MaxInFlight: 1, MaxQueue: 1})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const flood = 12
	req := nycWindows(1)[0]
	req.NoCache = true // every request must execute
	codes := make([]int, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, codes[i] = postQuery(t, ts.URL, req)
		}(i)
	}
	wg.Wait()

	counts := map[int]int{}
	for _, c := range codes {
		counts[c]++
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("no request succeeded: %v", counts)
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("no request was shed with 429: %v", counts)
	}
	for c := range counts {
		if c != http.StatusOK && c != http.StatusTooManyRequests && c != http.StatusGatewayTimeout {
			t.Errorf("unexpected status %d: %v", c, counts)
		}
	}
	m := getMetrics(t, ts.URL)
	if m.Admission.ShedBusy == 0 {
		t.Errorf("admission counters saw no sheds: %+v", m.Admission)
	}
	if int(m.Admission.ShedBusy)+int(m.Admission.ShedTimeout)+counts[http.StatusOK] != flood {
		t.Errorf("sheds (%d busy, %d slow) + %d ok != %d requests",
			m.Admission.ShedBusy, m.Admission.ShedTimeout, counts[http.StatusOK], flood)
	}
}

// TestRequestTimeoutSheds504 serves with a deadline far below the injected
// task delay: the query must come back 504, not hang.
func TestRequestTimeoutSheds504(t *testing.T) {
	ctx := engine.New(engine.Config{
		Slots:  2,
		Faults: &engine.FaultPlan{DelayTasks: map[int]time.Duration{0: 300 * time.Millisecond}},
	})
	dir := ingestNYC(t, ctx, 1000)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20, Timeout: 30 * time.Millisecond})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := nycWindows(1)[0]
	req.NoCache = true
	if _, code := postQuery(t, ts.URL, req); code != http.StatusGatewayTimeout {
		t.Errorf("slow query status = %d, want 504", code)
	}
	if m := getMetrics(t, ts.URL); m.Server.Timeouts == 0 {
		t.Error("timeout counter did not move")
	}
}

// TestMetadataReloadInvalidatesCache re-ingests the dataset under the
// running server and expects the catalog to pick up the new metadata (by
// mtime) and drop the stale cached results.
func TestMetadataReloadInvalidatesCache(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 2000)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := nycWindows(1)[0]
	first, code := postQuery(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}

	// Re-ingest twice as many records; nudge the metadata mtime forward in
	// case the filesystem's resolution is too coarse to see the rewrite.
	sch, _ := stdata.Lookup("nyc")
	if _, err := sch.Ingest(ctx, datagen.NYC(4000, 2), dir, sch.DefaultPlanner(4, 4),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	metaPath := filepath.Join(dir, storage.MetadataFile)
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(metaPath, future, future); err != nil {
		t.Fatal(err)
	}

	second, code := postQuery(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status after reload %d", code)
	}
	if second.Cache == "hit" {
		t.Error("query after re-ingest served from stale cache")
	}
	if second.Stats.LoadedRecords <= first.Stats.LoadedRecords {
		t.Errorf("reload not picked up: loaded %d then %d records",
			first.Stats.LoadedRecords, second.Stats.LoadedRecords)
	}
}

// TestUnknownDatasetAndBadBody covers the 4xx paths.
func TestUnknownDatasetAndBadBody(t *testing.T) {
	srv := NewServer(Config{Ctx: engine.New(engine.Config{Slots: 1})})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, code := postQuery(t, ts.URL, QueryRequest{Dataset: "nope"}); code != http.StatusNotFound {
		t.Errorf("unknown dataset status = %d, want 404", code)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d, want 400", resp.StatusCode)
	}
}

// TestDatasetsEndpoint lists registered datasets.
func TestDatasetsEndpoint(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 1000)
	srv := NewServer(Config{Ctx: ctx})
	if err := srv.AddDataset("taxi", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("taxi", "nyc", dir); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := srv.AddDataset("x", "not-a-schema", dir); err == nil {
		t.Error("unknown schema should fail")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "taxi" || infos[0].Schema != "nyc" ||
		infos[0].Records == 0 || infos[0].Partitions == 0 {
		t.Errorf("datasets = %+v", infos)
	}
}

// TestLimitCapsRecords asks for at most 3 record bodies.
func TestLimitCapsRecords(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 2000)
	srv := NewServer(Config{Ctx: ctx})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := nycWindows(1)[0]
	req.Limit = 3
	res, code := postQuery(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.Stats.SelectedRecords <= 3 {
		t.Skipf("window only matched %d records", res.Stats.SelectedRecords)
	}
	if len(res.Records) != 3 {
		t.Errorf("got %d records, want 3", len(res.Records))
	}
}
