package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestGracefulDrainCompletesInFlight pins the drain contract: on shutdown
// the drainer flips first (readiness goes 503), in-flight requests finish
// inside the drain budget, and the loop exits clean.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	var draining atomic.Bool
	mux := http.NewServeMux()
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		fmt.Fprint(w, "done")
	})

	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- GracefulContext(ctx, GracefulConfig{
			Addr:         "127.0.0.1:0",
			Handler:      mux,
			Drainer:      drainFunc(func(v bool) { draining.Store(v) }),
			DrainTimeout: 5 * time.Second,
			OnListen:     func(addr string) { addrc <- addr },
		})
	}()
	addr := <-addrc

	// One request in flight, parked inside the handler.
	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			slowDone <- -1
			return
		}
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	<-entered

	// Shutdown arrives while the request is in flight.
	cancel()
	// The drainer must flip before Shutdown returns; give the loop a beat.
	deadline := time.Now().Add(2 * time.Second)
	for !draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("drainer never flipped after shutdown signal")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The parked request completes rather than being cut.
	release <- struct{}{}
	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("graceful loop returned %v", err)
	}
	// The listener is gone: new connections fail.
	if _, err := http.Get("http://" + addr + "/slow"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestGracefulDrainTimeout pins the bound: a request that outlives the
// drain budget is cut instead of holding shutdown forever.
func TestGracefulDrainTimeout(t *testing.T) {
	mux := http.NewServeMux()
	entered := make(chan struct{}, 1)
	block := make(chan struct{})
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-block
	})
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- GracefulContext(ctx, GracefulConfig{
			Addr:         "127.0.0.1:0",
			Handler:      mux,
			DrainTimeout: 50 * time.Millisecond,
			OnListen:     func(addr string) { addrc <- addr },
		})
	}()
	addr := <-addrc
	go func() {
		resp, err := http.Get("http://" + addr + "/hang")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	cancel()
	select {
	case <-done:
		close(block)
	case <-time.After(5 * time.Second):
		t.Fatal("drain timeout did not bound shutdown")
	}
}

// drainFunc adapts a closure to the Drainer interface.
type drainFunc func(bool)

func (f drainFunc) SetDraining(v bool) { f(v) }
