// Package serve is the ST feature-serving daemon: the long-running tier
// that turns the repository's one-shot Selection pipeline into an
// interactive service. Where stquery rebuilds an engine.Context, re-reads
// metadata.json, and re-indexes partitions for every invocation, a Server
// amortizes all of that across requests:
//
//   - a Catalog pins each dataset's partition metadata in memory behind an
//     RWMutex, revalidated by file mtime (a re-ingest is picked up without
//     a restart and bumps the dataset generation);
//   - a byte-budgeted LRU Cache holds decoded partitions — each pinned
//     together with its 3-d R-tree, built lazily on first touch — and
//     marshaled query results, so hot windows skip disk (and the engine)
//     entirely;
//   - every query executes as engine tasks on one shared engine.Context,
//     exercising the engine's multi-job concurrency, retries included;
//   - an Admission controller bounds in-flight queries and queue depth and
//     sheds the excess with 429 (queue full) or 504 (deadline passed),
//     keeping tail latency bounded under overload.
//
// Endpoints: POST /query, GET /datasets, GET /metrics, GET /healthz.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"st4ml/internal/engine"
	"st4ml/internal/subscribe"
	"st4ml/internal/trace"
)

// Config tunes a Server. Zero values pick serving defaults.
type Config struct {
	// Ctx is the shared execution engine. Nil builds a default Context.
	Ctx *engine.Context
	// CacheBytes is the joint partition+result cache budget.
	// 0 means 256 MiB; negative disables caching.
	CacheBytes int64
	// MaxInFlight is the concurrent query bound. 0 means 2×engine slots.
	MaxInFlight int
	// MaxQueue is how many queries may wait for a slot before new arrivals
	// are shed with 429. 0 means 4×MaxInFlight; negative means no queue.
	MaxQueue int
	// Timeout is the per-request deadline; a query that cannot finish (or
	// even start) in time is answered 504. 0 means 30s.
	Timeout time.Duration
	// ShardName identifies this daemon in cluster sub-query responses and
	// stitched trace spans ("" for a standalone daemon).
	ShardName string
	// SubscribeQueue is the per-subscriber bounded update queue for the
	// POST /subscribe online path; when it fills, the oldest pending event
	// is dropped and the subscriber resyncs. 0 means subscribe.DefaultQueue.
	SubscribeQueue int
	// SubscribePoll is the manifest-poll cadence that picks up delta
	// commits made by other processes (in-process commits push instantly
	// via the storage commit hook). 0 means 250ms; negative disables
	// polling, leaving the hook as the only trigger.
	SubscribePoll time.Duration
	// Tracer, when non-nil, records the hub's subscribe:match and
	// subscribe:push spans (explain/trace integration for the online path).
	Tracer *trace.Tracer
}

// Server is the serving daemon's state: catalog, cache, admission, and the
// shared engine context, plus request counters in the engine.Metrics style.
type Server struct {
	ctx       *engine.Context
	catalog   *Catalog
	cache     *Cache
	adm       *Admission
	hub       *subscribe.Hub
	timeout   time.Duration
	started   time.Time
	shardName string

	// hookCancels unregisters the storage commit hooks AddDataset installed
	// (see Close); closeOnce makes Close idempotent.
	hookMu      sync.Mutex
	hookCancels []func()
	closeOnce   sync.Once

	// draining flips once, when a SIGTERM begins the shutdown drain: the
	// readiness probe turns 503 so routers stop sending new work, while
	// liveness stays green and in-flight requests finish.
	draining atomic.Bool

	queries        atomic.Int64
	subscribes     atomic.Int64
	queryErrors    atomic.Int64
	resultHits     atomic.Int64
	resultMisses   atomic.Int64
	partitionLoads atomic.Int64
	timeouts       atomic.Int64
	subqueries     atomic.Int64
	genConflicts   atomic.Int64

	// lastGen tracks each dataset's observed metadata generation, so a
	// reload triggers eager cache invalidation (see noteGeneration).
	genMu   sync.Mutex
	lastGen map[string]int64
}

// NewServer builds a Server from cfg.
func NewServer(cfg Config) *Server {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = engine.New(engine.Config{})
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 256 << 20
	}
	inFlight := cfg.MaxInFlight
	if inFlight <= 0 {
		inFlight = 2 * ctx.Slots()
	}
	queue := cfg.MaxQueue
	if queue == 0 {
		queue = 4 * inFlight
	} else if queue < 0 {
		queue = 0
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	s := &Server{
		ctx:       ctx,
		catalog:   NewCatalog(),
		cache:     NewCache(cacheBytes),
		adm:       NewAdmission(inFlight, queue),
		hub:       subscribe.NewHub(subscribe.Config{Queue: cfg.SubscribeQueue, Tracer: cfg.Tracer}),
		timeout:   timeout,
		started:   time.Now(),
		shardName: cfg.ShardName,
		lastGen:   map[string]int64{},
	}
	poll := cfg.SubscribePoll
	if poll == 0 {
		poll = 250 * time.Millisecond
	}
	if poll > 0 {
		s.hub.StartPolling(poll)
	}
	return s
}

// SetDraining marks the daemon as draining (or not): readiness turns 503
// and new queries are refused, while in-flight work completes. Called by
// the daemon's SIGTERM handler before http.Server.Shutdown. Entering the
// drain also closes every live subscription, so long-lived SSE streams end
// immediately instead of pinning the drain until its timeout cuts them.
func (s *Server) SetDraining(v bool) {
	s.draining.Store(v)
	if v {
		s.hub.CloseAll()
	}
}

// Draining reports whether the daemon is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// Catalog exposes the server's dataset catalog.
func (s *Server) Catalog() *Catalog { return s.catalog }

// Engine exposes the shared execution context.
func (s *Server) Engine() *engine.Context { return s.ctx }

// AddDataset registers the dataset at dir under name, decoded by the named
// stdata schema, and wires it into the subscription hub (commit hook +
// notifier).
func (s *Server) AddDataset(name, schemaName, dir string) error {
	d, err := s.catalog.Register(name, schemaName, dir)
	if err != nil {
		return err
	}
	s.attachSubscriptions(d)
	return nil
}

// ServerStats is the /metrics wire form of the server-level counters.
type ServerStats struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Shard          string  `json:"shard,omitempty"`
	Draining       bool    `json:"draining"`
	Queries        int64   `json:"queries"`
	Subscribes     int64   `json:"subscribes"`
	QueryErrors    int64   `json:"query_errors"`
	ResultHits     int64   `json:"result_cache_hits"`
	ResultMisses   int64   `json:"result_cache_misses"`
	PartitionLoads int64   `json:"partition_loads"`
	Timeouts       int64   `json:"timeouts"`
	Subqueries     int64   `json:"subqueries"`
	GenConflicts   int64   `json:"generation_conflicts"`
}

// Stats returns a snapshot of the server-level counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Shard:          s.shardName,
		Draining:       s.draining.Load(),
		Queries:        s.queries.Load(),
		Subscribes:     s.subscribes.Load(),
		QueryErrors:    s.queryErrors.Load(),
		ResultHits:     s.resultHits.Load(),
		ResultMisses:   s.resultMisses.Load(),
		PartitionLoads: s.partitionLoads.Load(),
		Timeouts:       s.timeouts.Load(),
		Subqueries:     s.subqueries.Load(),
		GenConflicts:   s.genConflicts.Load(),
	}
}
