// Package core is the ST4ML public API: a Session that owns the execution
// engine and exposes the three-stage Selection–Conversion–Extraction
// pipeline over the standard on-disk schemas. The end-to-end flow mirrors
// the paper's §3.4 running example:
//
//	s := core.NewSession(engine.Config{})
//	sel := s.TrajSelector(selection.Config{Planner: partition.TSTR{GT: 10, GS: 10}})
//	recs, _, err := sel.SelectPruned(dataDir, core.Window(city, month))
//	trajs := core.TrajInstances(recs)
//	raster := convert.TrajToRaster(trajs, convert.RasterGridTarget(grid), convert.Auto, agg)
//	speeds, _ := extract.RasterSpeed(raster, extract.KMH)
//
// The generic machinery lives in the stage packages (selection, convert,
// extract); core binds them to the standard record types and owns session
// lifecycle.
package core

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/instance"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/tempo"
)

// Session owns one logical cluster and its metrics.
type Session struct {
	ctx *engine.Context
}

// NewSession starts a session over a simulated cluster.
func NewSession(cfg engine.Config) *Session {
	return &Session{ctx: engine.New(cfg)}
}

// Context exposes the underlying engine context for RDD-level programming
// (the paper's "native Spark operations" extension level).
func (s *Session) Context() *engine.Context { return s.ctx }

// Metrics returns a snapshot of the session's execution counters.
func (s *Session) Metrics() engine.Snapshot { return s.ctx.Metrics.Snapshot() }

// Window builds an ST query window.
func Window(space geom.MBR, dur tempo.Duration) selection.Window {
	return selection.Window{Space: space, Time: dur}
}

// EventSelector builds a selector over the standard event schema. Events
// filter exactly at box level (points), so no exact refinement is needed.
func (s *Session) EventSelector(cfg selection.Config) *selection.Selector[stdata.EventRec] {
	return selection.New(s.ctx, stdata.EventRecC, stdata.EventRec.Box, nil, cfg)
}

// TrajSelector builds a selector over the standard trajectory schema, with
// exact per-segment window refinement.
func (s *Session) TrajSelector(cfg selection.Config) *selection.Selector[stdata.TrajRec] {
	exact := func(tr stdata.TrajRec, space geom.MBR, dur tempo.Duration) bool {
		return tr.ToTrajectory().Intersects(space, dur)
	}
	return selection.New(s.ctx, stdata.TrajRecC, stdata.TrajRec.Box, exact, cfg)
}

// AirSelector builds a selector over the air-quality schema.
func (s *Session) AirSelector(cfg selection.Config) *selection.Selector[stdata.AirRec] {
	return selection.New(s.ctx, stdata.AirRecC, stdata.AirRec.Box, nil, cfg)
}

// POISelector builds a selector over the POI schema.
func (s *Session) POISelector(cfg selection.Config) *selection.Selector[stdata.POIRec] {
	return selection.New(s.ctx, stdata.POIRecC, stdata.POIRec.Box, nil, cfg)
}

// IngestEvents T-STR-partitions event records and persists them with
// metadata (the offline preparation of §4.1). planner defaults to
// TSTR(8,8) when nil.
func (s *Session) IngestEvents(
	recs []stdata.EventRec, dir string, planner partition.Planner, opts selection.IngestOptions,
) (*storage.Metadata, error) {
	if planner == nil {
		planner = partition.TSTR{GT: 8, GS: 8}
	}
	r := engine.Parallelize(s.ctx, recs, 0)
	return selection.Ingest(r, dir, stdata.EventRecC, stdata.EventRec.Box, planner, opts)
}

// IngestTrajs T-STR-partitions trajectory records and persists them.
func (s *Session) IngestTrajs(
	recs []stdata.TrajRec, dir string, planner partition.Planner, opts selection.IngestOptions,
) (*storage.Metadata, error) {
	if planner == nil {
		planner = partition.TSTR{GT: 8, GS: 8}
	}
	r := engine.Parallelize(s.ctx, recs, 0)
	return selection.Ingest(r, dir, stdata.TrajRecC, stdata.TrajRec.Box, planner, opts)
}

// IngestAir T-STR-partitions air-quality records and persists them.
func (s *Session) IngestAir(
	recs []stdata.AirRec, dir string, planner partition.Planner, opts selection.IngestOptions,
) (*storage.Metadata, error) {
	if planner == nil {
		planner = partition.TSTR{GT: 8, GS: 8}
	}
	r := engine.Parallelize(s.ctx, recs, 0)
	return selection.Ingest(r, dir, stdata.AirRecC, stdata.AirRec.Box, planner, opts)
}

// IngestPOIs spatially partitions POI records (they carry no time) and
// persists them. planner defaults to STR2D(64).
func (s *Session) IngestPOIs(
	recs []stdata.POIRec, dir string, planner partition.Planner, opts selection.IngestOptions,
) (*storage.Metadata, error) {
	if planner == nil {
		planner = partition.STR2D{N: 64}
	}
	r := engine.Parallelize(s.ctx, recs, 0)
	return selection.Ingest(r, dir, stdata.POIRecC, stdata.POIRec.Box, planner, opts)
}

// EventInstances parses selected event records into instance RDDs — the
// parse step of the Selection stage's first Spark task (Fig. 2).
func EventInstances(r *engine.RDD[stdata.EventRec]) *engine.RDD[instance.Event[geom.Point, string, int64]] {
	return engine.Map(r, stdata.EventRec.ToEvent)
}

// TrajInstances parses selected trajectory records into instance RDDs.
func TrajInstances(r *engine.RDD[stdata.TrajRec]) *engine.RDD[instance.Trajectory[instance.Unit, int64]] {
	return engine.Map(r, stdata.TrajRec.ToTrajectory)
}

// AirInstances parses air records into event instances carrying the six
// indices.
func AirInstances(r *engine.RDD[stdata.AirRec]) *engine.RDD[instance.Event[geom.Point, [6]float64, int64]] {
	return engine.Map(r, stdata.AirRec.ToEvent)
}

// POIInstances parses POI records into event instances.
func POIInstances(r *engine.RDD[stdata.POIRec]) *engine.RDD[instance.Event[geom.Point, string, int64]] {
	return engine.Map(r, stdata.POIRec.ToEvent)
}

// BoxOfWindow converts a selection window to an index box (a convenience
// for custom pruning logic).
func BoxOfWindow(w selection.Window) index.Box { return w.Box() }
