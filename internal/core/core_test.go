package core

import (
	"testing"

	"st4ml/internal/convert"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

func TestSessionLifecycle(t *testing.T) {
	s := NewSession(engine.Config{Slots: 2})
	if s.Context() == nil {
		t.Fatal("nil context")
	}
	if s.Context().Slots() != 2 {
		t.Errorf("slots = %d", s.Context().Slots())
	}
	if got := s.Metrics(); got.TasksRun != 0 {
		t.Errorf("fresh session ran tasks: %+v", got)
	}
}

func TestWindowHelper(t *testing.T) {
	w := Window(geom.Box(0, 0, 1, 1), tempo.New(5, 10))
	if w.Space != geom.Box(0, 0, 1, 1) || w.Time != tempo.New(5, 10) {
		t.Errorf("Window = %+v", w)
	}
	if BoxOfWindow(w) != w.Box() {
		t.Error("BoxOfWindow mismatch")
	}
}

// TestEndToEndPipeline runs the §3.4 example through the facade: ingest,
// select, convert, extract.
func TestEndToEndPipeline(t *testing.T) {
	s := NewSession(engine.Config{Slots: 4})
	dir := t.TempDir()
	trajs := datagen.Porto(500, 3)
	meta, err := s.IngestTrajs(trajs, dir, nil, selection.IngestOptions{Name: "porto"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.TotalCount != 500 {
		t.Fatalf("ingested %d", meta.TotalCount)
	}

	week := tempo.New(datagen.Year2013.Start, datagen.Year2013.Start+7*86400-1)
	sel := s.TrajSelector(selection.Config{Index: true})
	recs, stats, err := sel.SelectPruned(dir, Window(datagen.PortoExtent, week))
	if err != nil {
		t.Fatal(err)
	}
	if stats.SelectedRecords == 0 {
		t.Skip("no trajectories in the first week at this seed")
	}

	grid := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: datagen.PortoExtent, NX: 4, NY: 4},
		Time:  instance.TimeGrid{Window: week, NT: 7},
	}
	cells := convert.TrajToRaster(TrajInstances(recs), convert.RasterGridTarget(grid),
		convert.Auto, func(in []instance.Trajectory[instance.Unit, int64]) []instance.Trajectory[instance.Unit, int64] {
			return in
		})
	speeds, ok := extract.RasterSpeed(cells, extract.KMH)
	if !ok {
		t.Fatal("no extraction result")
	}
	var total int64
	for _, e := range speeds.Entries {
		total += e.Value.Count
	}
	if total == 0 {
		t.Error("no vehicle observations in raster")
	}
}

func TestTypedSelectorsAndIngests(t *testing.T) {
	s := NewSession(engine.Config{Slots: 4})

	// Events.
	evDir := t.TempDir()
	events := datagen.NYC(800, 1)
	if _, err := s.IngestEvents(events, evDir, partition.TSTR{GT: 2, GS: 2},
		selection.IngestOptions{Name: "ev"}); err != nil {
		t.Fatal(err)
	}
	evSel := s.EventSelector(selection.Config{})
	evs, _, err := evSel.SelectPruned(evDir, Window(datagen.NYCExtent, datagen.Year2013))
	if err != nil {
		t.Fatal(err)
	}
	if got := evs.Count(); got != 800 {
		t.Errorf("events selected = %d", got)
	}
	inst := EventInstances(evs).Collect()
	if len(inst) != 800 || inst[0].Entry.Value == "" {
		t.Error("event instances malformed")
	}

	// Air.
	airDir := t.TempDir()
	air := datagen.Air(3, 1, 1, 3600, 2)
	if _, err := s.IngestAir(air, airDir, nil, selection.IngestOptions{Name: "air"}); err != nil {
		t.Fatal(err)
	}
	airSel := s.AirSelector(selection.Config{})
	airs, _, err := airSel.Select(airDir)
	if err != nil {
		t.Fatal(err)
	}
	if int(airs.Count()) != len(air) {
		t.Errorf("air selected = %d, want %d", airs.Count(), len(air))
	}
	airInst := AirInstances(airs).Collect()
	if len(airInst) != len(air) {
		t.Error("air instances malformed")
	}

	// POIs (no temporal dimension).
	poiDir := t.TempDir()
	pois, _ := datagen.OSM(600, 4, 3)
	if _, err := s.IngestPOIs(pois, poiDir, nil, selection.IngestOptions{Name: "poi"}); err != nil {
		t.Fatal(err)
	}
	poiSel := s.POISelector(selection.Config{Index: true})
	sel, _, err := poiSel.SelectPruned(poiDir,
		Window(datagen.WorldExtent, tempo.New(-1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Count(); got != 600 {
		t.Errorf("pois selected = %d", got)
	}
	if got := POIInstances(sel).Count(); got != 600 {
		t.Errorf("poi instances = %d", got)
	}
}

func TestTrajSelectorExactRefinement(t *testing.T) {
	// The typed trajectory selector refines at segment level: a window in
	// the empty corner of a diagonal trajectory's MBR must not match.
	s := NewSession(engine.Config{Slots: 2})
	dir := t.TempDir()
	diag := datagen.Porto(1, 9)[0]
	// Force a clean diagonal.
	diag.Points = []geom.Point{geom.Pt(-8.69, 41.11), geom.Pt(-8.51, 41.24)}
	diag.Times = []int64{1000, 2000}
	if _, err := s.IngestTrajs([]stdata.TrajRec{diag}, dir, nil,
		selection.IngestOptions{Name: "diag"}); err != nil {
		t.Fatal(err)
	}
	sel := s.TrajSelector(selection.Config{Index: true})
	// Window in the north-west corner, off the diagonal.
	corner := Window(geom.Box(-8.68, 41.22, -8.66, 41.235), tempo.New(0, 3000))
	got, _, err := sel.SelectPruned(dir, corner)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 {
		t.Error("exact refinement should reject the MBR-only match")
	}
	// A window on the diagonal matches.
	onPath := Window(geom.Box(-8.61, 41.16, -8.58, 41.19), tempo.New(0, 3000))
	got, _, err = sel.SelectPruned(dir, onPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 1 {
		t.Error("exact refinement should keep the on-path match")
	}
}
