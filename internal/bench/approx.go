package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/summary"
)

// The approx experiment measures what the approximate query tier buys: the
// same window workload answered once through the exact block-scan path and
// once from compaction-time summary sidecars. The sidecar path reads a few
// KB of sketches per touched partition instead of every intersecting
// block, so bytes read should collapse — most dramatically on narrow
// windows, where the exact path still decodes whole boundary blocks for a
// handful of matches — while every envelope keeps containing the exact
// count (checked per window, not on average).

// ApproxRow is one range-fraction measurement: the exact and approximate
// sides of the same window sweep, with the acceptance ratios precomputed.
type ApproxRow struct {
	Frac          float64 `json:"frac"`
	Queries       int     `json:"queries"`
	ExactWallMs   float64 `json:"exact_wall_ms"`
	ExactBytes    int64   `json:"exact_bytes"`
	Selected      int64   `json:"selected"`
	ApproxWallMs  float64 `json:"approx_wall_ms"`
	ApproxBytes   int64   `json:"approx_bytes"`
	SummaryBlocks int64   `json:"summary_blocks"`
	ScannedBlocks int64   `json:"scanned_blocks"`
	Contained     bool    `json:"contained"` // exact ∈ [lo,hi] for EVERY window
	Fallbacks     int     `json:"fallbacks"`
	BytesRatio    float64 `json:"exact_over_approx_bytes"`
	Speedup       float64 `json:"exact_over_approx_wall"`
}

// Approx ingests an NYC-like v3 store under workdir, backfills summary
// sidecars, and sweeps queriesPerFrac random windows per range fraction
// through both paths.
func Approx(ctx *engine.Context, workdir string, events, queriesPerFrac int, fracs []float64) ([]ApproxRow, error) {
	sch, ok := stdata.Lookup("nyc")
	if !ok {
		return nil, fmt.Errorf("bench: nyc schema not registered")
	}
	dir := filepath.Join(workdir, "approx-nyc")
	corpus := datagen.NYC(events, 23)
	// Coarser partitioning than the selection benchmarks: summaries earn
	// their keep on partitions holding many blocks, where the exact path
	// decodes kilobytes per boundary block and the sidecar answers from a
	// few hundred bytes of sketches each.
	if _, err := sch.Ingest(ctx, corpus, dir, sch.DefaultPlanner(4, 2),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.05, Seed: 23}); err != nil {
		return nil, err
	}
	if _, err := sch.BuildSummaries(dir, summary.Config{}); err != nil {
		return nil, err
	}
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		return nil, err
	}
	sel := selection.New(ctx, stdata.EventRecC, stdata.EventRec.Box, nil,
		selection.Config{Index: true})

	var rows []ApproxRow
	for _, frac := range fracs {
		windows := RandomWindows(datagen.NYCExtent, datagen.Year2013, frac,
			queriesPerFrac, int64(frac*1000)+23)
		row := ApproxRow{Frac: frac, Queries: len(windows), Contained: true}
		for _, w := range windows {
			t0 := time.Now()
			_, st, err := sel.SelectPruned(dir, w)
			if err != nil {
				return nil, err
			}
			row.ExactWallMs += float64(time.Since(t0).Microseconds()) / 1000
			row.ExactBytes += st.LoadedBytes
			row.Selected += st.SelectedRecords

			t0 = time.Now()
			res, _, err := sch.ApproxQuery(ctx, dir, meta, w,
				stdata.ApproxRequest{Agg: summary.AggCount})
			if err != nil {
				return nil, err
			}
			row.ApproxWallMs += float64(time.Since(t0).Microseconds()) / 1000
			row.ApproxBytes += res.BytesRead
			row.SummaryBlocks += res.SummaryBlocks
			row.ScannedBlocks += res.ScannedBlocks
			if st.SelectedRecords < res.CountLo || st.SelectedRecords > res.CountHi {
				row.Contained = false
			}
			if res.Fallback {
				row.Fallbacks++
			}
		}
		row.BytesRatio = ratio(float64(row.ExactBytes), float64(row.ApproxBytes))
		row.Speedup = ratio(row.ExactWallMs, row.ApproxWallMs)
		rows = append(rows, row)
	}
	return rows, nil
}

// ApproxTable formats the rows.
func ApproxTable(rows []ApproxRow) *Table {
	t := NewTable("Approx: summary-sidecar aggregates vs exact block scans (count)",
		"range", "queries", "exact_ms", "approx_ms", "speedup",
		"exact_mb", "approx_mb", "bytes_ratio", "contained", "fallbacks")
	for _, r := range rows {
		t.Add(r.Frac, r.Queries, r.ExactWallMs, r.ApproxWallMs, r.Speedup,
			float64(r.ExactBytes)/(1<<20), float64(r.ApproxBytes)/(1<<20),
			r.BytesRatio, fmt.Sprint(r.Contained), r.Fallbacks)
	}
	return t
}
