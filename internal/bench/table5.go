package bench

import (
	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/index"
	"st4ml/internal/partition"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// Table5Row is one cell group of Table 5: load balance (CV) and ST-locality
// (OV) of one partitioner on one dataset.
type Table5Row struct {
	Partitioner string
	Dataset     string
	CV          float64
	OV          float64
}

// Table5 evaluates the load balance and overlap of the compared
// partitioners: the engine's Hash partitioner (native Spark's random
// layout), the GeoMesa-like Z3 chunking (measured on the real store), the
// GeoSpark-like KD-tree, and T-STR — n partitions each (T-STR uses gt×gs).
func Table5(env *Env, n, gt, gs int) []Table5Row {
	var rows []Table5Row
	evRDD := engine.Parallelize(env.Ctx, env.Events, 0)
	trRDD := engine.Parallelize(env.Ctx, env.Trajs, 0)

	rows = append(rows,
		table5One(evRDD, stdata.EventRecC, stdata.EventRec.Box, "event", "Native(Hash)", nil, n),
		table5One(trRDD, stdata.TrajRecC, stdata.TrajRec.Box, "traj", "Native(Hash)", nil, n))

	// The GeoMesa-like layout is its Z3-curve chunking: measure the real
	// store's chunk extents (key-ordered runs are spatially non-contiguous,
	// which is what drives its OV up — the paper's 13.44).
	rows = append(rows,
		table5Store(env.GMEventDir, "event", "GeoMesa(Z3)"),
		table5Store(env.GMTrajDir, "traj", "GeoMesa(Z3)"))

	planners := []struct {
		name string
		p    partition.Planner
	}{
		{"GeoSpark(KD)", partition.KDTree{N: n}},
		{"ST4ML(T-STR)", partition.TSTR{GT: gt, GS: gs}},
	}
	for _, pl := range planners {
		rows = append(rows,
			table5One(evRDD, stdata.EventRecC, stdata.EventRec.Box, "event", pl.name, pl.p, n),
			table5One(trRDD, stdata.TrajRecC, stdata.TrajRec.Box, "traj", pl.name, pl.p, n))
	}
	return rows
}

// table5Store measures CV/OV from an on-disk store's partition metadata
// (counts and tight ST bounds per chunk).
func table5Store(dir, dataset, name string) Table5Row {
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		panic(err)
	}
	counts := make([]int64, 0, meta.NumPartitions())
	boxes := make([]index.Box, 0, meta.NumPartitions())
	all := index.EmptyBox()
	for _, p := range meta.Partitions {
		counts = append(counts, p.Count)
		if p.Count > 0 {
			boxes = append(boxes, p.Box())
			all = all.Union(p.Box())
		}
	}
	return Table5Row{
		Partitioner: name,
		Dataset:     dataset,
		CV:          partition.CV(counts),
		OV:          partition.OV(boxes, all),
	}
}

// table5One partitions r (hash when planner is nil) and measures CV/OV of
// the resulting layout.
func table5One[T any](
	r *engine.RDD[T],
	c codec.Codec[T],
	boxOf func(T) index.Box,
	dataset, name string,
	planner partition.Planner,
	n int,
) Table5Row {
	var partitioned *engine.RDD[T]
	if planner == nil {
		partitioned = engine.HashPartitionBy(r, c, n)
	} else {
		partitioned, _ = partition.ByPlanner(r, c, boxOf, planner,
			partition.Options{SampleFrac: 0.05, Seed: 5})
	}
	cv, ov := measurePartitions(partitioned, boxOf)
	return Table5Row{Partitioner: name, Dataset: dataset, CV: cv, OV: ov}
}

// partStats holds one partition's record count and tight record cover box.
type partStats struct {
	count int64
	cover index.Box
}

// measurePartitions computes the Table 5 metrics from actual per-partition
// record placement: CV over record counts, OV over tight per-partition
// cover boxes normalized by the global extent.
func measurePartitions[T any](r *engine.RDD[T], boxOf func(T) index.Box) (cv, ov float64) {
	stats := engine.MapPartitions(r, func(_ int, in []T) []partStats {
		cover := index.EmptyBox()
		for _, v := range in {
			cover = cover.Union(boxOf(v))
		}
		return []partStats{{count: int64(len(in)), cover: cover}}
	}).Collect()
	counts := make([]int64, len(stats))
	boxes := make([]index.Box, 0, len(stats))
	all := index.EmptyBox()
	for i, s := range stats {
		counts[i] = s.count
		all = all.Union(s.cover)
		if !s.cover.IsEmpty() {
			boxes = append(boxes, s.cover)
		}
	}
	return partition.CV(counts), partition.OV(boxes, all)
}

// Table5Table formats the rows in the paper's layout.
func Table5Table(rows []Table5Row) *Table {
	t := NewTable("Table 5: load balance (CV) and ST overlap (OV)",
		"partitioner", "CV_event", "OV_event", "CV_traj", "OV_traj")
	byName := map[string]map[string]Table5Row{}
	var order []string
	for _, r := range rows {
		if byName[r.Partitioner] == nil {
			byName[r.Partitioner] = map[string]Table5Row{}
			order = append(order, r.Partitioner)
		}
		byName[r.Partitioner][r.Dataset] = r
	}
	for _, name := range order {
		ev := byName[name]["event"]
		tr := byName[name]["traj"]
		t.Add(name, ev.CV, ev.OV, tr.CV, tr.OV)
	}
	return t
}
