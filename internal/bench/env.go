// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5–§6) against the synthetic corpora:
// Fig. 5 (selection with on-disk metadata), Fig. 6 (conversion
// optimization), Table 5 (load balance), Table 6 (T-STR vs 2-d STR), Fig. 7
// (eight end-to-end applications on three systems), Table 8 (lines of
// code), Fig. 9 and Table 9 (case studies). See DESIGN.md's per-experiment
// index. Absolute numbers differ from the paper (simulated cluster,
// laptop-scale data); the harness reports the shapes EXPERIMENTS.md
// verifies.
package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"st4ml/internal/baseline"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

// Scale sizes the synthetic corpora. Defaults (zero value) are laptop-sized.
type Scale struct {
	Events int // NYC-like events
	Trajs  int // Porto-like trajectories (after enlargement)
	POIs   int
	Areas  int
	AirSta int // air stations before replication
}

// withDefaults fills zero fields.
func (s Scale) withDefaults() Scale {
	if s.Events == 0 {
		s.Events = 200_000
	}
	if s.Trajs == 0 {
		s.Trajs = 20_000
	}
	if s.POIs == 0 {
		s.POIs = 100_000
	}
	if s.Areas == 0 {
		s.Areas = 400
	}
	if s.AirSta == 0 {
		s.AirSta = 40
	}
	return s
}

// Env holds one prepared benchmark environment: generated corpora and the
// per-system on-disk stores.
type Env struct {
	Ctx   *engine.Context
	Scale Scale

	Events []stdata.EventRec
	Trajs  []stdata.TrajRec
	Air    []stdata.AirRec
	POIs   []stdata.POIRec
	Areas  []stdata.AreaRec

	// ST4ML T-STR-partitioned stores with metadata.
	EventDir, TrajDir string
	// Baseline flat feature stores (GeoSpark loads these wholesale).
	GSEventDir, GSTrajDir string
	// GeoMesa Z-ordered stores.
	GMEventDir, GMTrajDir string
	// Opened GeoMesa stores (manifest built once at setup, as a persisted
	// index would be).
	GMEvents, GMTrajs *baseline.GeoMesa
}

// NewEnv generates corpora at the scale and ingests every store under
// baseDir. Deterministic for a fixed scale.
func NewEnv(ctx *engine.Context, baseDir string, scale Scale) (*Env, error) {
	scale = scale.withDefaults()
	e := &Env{Ctx: ctx, Scale: scale}
	e.Events = datagen.NYC(scale.Events, 1)
	base := datagen.Porto(scale.Trajs/4+1, 2)
	e.Trajs = datagen.Enlarge(base, 4, 20, 120, 3)[:scale.Trajs]
	e.Air = datagen.Air(scale.AirSta, 4, 7, 1800, 4)
	e.POIs, e.Areas = datagen.OSM(scale.POIs, scale.Areas, 5)

	e.EventDir = filepath.Join(baseDir, "st4ml-events")
	e.TrajDir = filepath.Join(baseDir, "st4ml-trajs")
	e.GSEventDir = filepath.Join(baseDir, "gs-events")
	e.GSTrajDir = filepath.Join(baseDir, "gs-trajs")
	e.GMEventDir = filepath.Join(baseDir, "gm-events")
	e.GMTrajDir = filepath.Join(baseDir, "gm-trajs")

	if err := os.MkdirAll(baseDir, 0o755); err != nil {
		return nil, err
	}
	// ST4ML stores: T-STR partitioned with metadata.
	evRDD := engine.Parallelize(ctx, e.Events, 0)
	// 512-record blocks give each ~2k-record partition a handful of blocks,
	// so the v2 footer bounds have something to prune inside loaded
	// partitions at small query ranges.
	if _, err := selection.Ingest(evRDD, e.EventDir, stdata.EventRecC, stdata.EventRec.Box,
		partition.TSTR{GT: 12, GS: 8},
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.05, Seed: 1, BlockRecords: 512}); err != nil {
		return nil, fmt.Errorf("ingest events: %w", err)
	}
	trRDD := engine.Parallelize(ctx, e.Trajs, 0)
	if _, err := selection.Ingest(trRDD, e.TrajDir, stdata.TrajRecC, stdata.TrajRec.Box,
		partition.TSTR{GT: 12, GS: 8},
		selection.IngestOptions{Name: "porto", SampleFrac: 0.05, Seed: 2, BlockRecords: 512}); err != nil {
		return nil, fmt.Errorf("ingest trajs: %w", err)
	}
	// GeoSpark stores: flat, unindexed.
	if _, err := baseline.IngestEventsToDisk(ctx, e.Events, e.GSEventDir, 2*ctx.Slots()); err != nil {
		return nil, fmt.Errorf("ingest gs events: %w", err)
	}
	if _, err := baseline.IngestTrajsToDisk(ctx, e.Trajs, e.GSTrajDir, 2*ctx.Slots()); err != nil {
		return nil, fmt.Errorf("ingest gs trajs: %w", err)
	}
	// GeoMesa stores: Z3-ordered chunks.
	evFeats := make([]baseline.Feature, len(e.Events))
	for i, ev := range e.Events {
		evFeats[i] = baseline.FromEventRec(ev)
	}
	if err := baseline.GeoMesaIngest(ctx, evFeats, e.GMEventDir,
		datagen.NYCExtent, datagen.Year2013, 8, 7*86400, 4096); err != nil {
		return nil, fmt.Errorf("ingest gm events: %w", err)
	}
	trFeats := make([]baseline.Feature, len(e.Trajs))
	for i, tr := range e.Trajs {
		trFeats[i] = baseline.FromTrajRec(tr)
	}
	if err := baseline.GeoMesaIngest(ctx, trFeats, e.GMTrajDir,
		datagen.PortoExtent, datagen.Year2013, 8, 7*86400, 4096); err != nil {
		return nil, fmt.Errorf("ingest gm trajs: %w", err)
	}
	var err error
	e.GMEvents, err = baseline.OpenGeoMesa(ctx, e.GMEventDir,
		datagen.NYCExtent, datagen.Year2013, 8, 7*86400)
	if err != nil {
		return nil, fmt.Errorf("open gm events: %w", err)
	}
	e.GMTrajs, err = baseline.OpenGeoMesa(ctx, e.GMTrajDir,
		datagen.PortoExtent, datagen.Year2013, 8, 7*86400)
	if err != nil {
		return nil, fmt.Errorf("open gm trajs: %w", err)
	}
	return e, nil
}

// RandomWindows generates n deterministic ST query windows, each covering
// frac of the extent's width/height and frac of the window's span.
func RandomWindows(extent geom.MBR, window tempo.Duration, frac float64, n int, seed int64) []selection.Window {
	return RandomWindowsST(extent, window, frac, frac, n, seed)
}

// RandomWindowsST generates windows with independent spatial and temporal
// fractions — e.g. the broad-space, weekly-time selection shape of §4.1.
func RandomWindowsST(extent geom.MBR, window tempo.Duration, sfrac, tfrac float64, n int, seed int64) []selection.Window {
	rng := rand.New(rand.NewSource(seed))
	out := make([]selection.Window, n)
	w := extent.Width() * sfrac
	h := extent.Height() * sfrac
	span := int64(float64(window.Seconds()) * tfrac)
	for i := range out {
		x := extent.MinX + rng.Float64()*(extent.Width()-w)
		y := extent.MinY + rng.Float64()*(extent.Height()-h)
		t := window.Start + rng.Int63n(max64(1, window.Seconds()-span))
		out[i] = selection.Window{
			Space: geom.Box(x, y, x+w, y+h),
			Time:  tempo.New(t, t+span),
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
