package bench

import (
	"testing"

	"st4ml/internal/engine"
)

// TestFig7SweepGrowth verifies the scale-sweep machinery and the paper's
// growth claim: as data grows, the GeoSpark-like load-everything design
// slows down at least as fast as ST4ML.
func TestFig7SweepGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := engine.New(engine.Config{Slots: 4})
	rows, err := Fig7Sweep(ctx, t.TempDir(),
		Scale{Events: 10_000, Trajs: 1_000, POIs: 4_000, Areas: 36, AirSta: 3},
		[]float64{0.5, 1.0},
		[]App{AppHourlyFlow},
		[]SystemKind{ST4MLB, GeoSpark},
		0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(sys SystemKind, frac float64) Fig7SweepRow {
		for _, r := range rows {
			if r.System == sys && r.ScaleFrac == frac {
				return r
			}
		}
		t.Fatalf("missing row %s@%g", sys, frac)
		return Fig7SweepRow{}
	}
	// Record counts grow with scale for both systems identically.
	if get(ST4MLB, 1.0).Records <= get(ST4MLB, 0.5).Records {
		t.Error("larger scale should select more records")
	}
	if get(ST4MLB, 1.0).Records != get(GeoSpark, 1.0).Records {
		t.Error("systems disagree on selected records")
	}
	// ST4ML stays faster at full scale.
	if get(ST4MLB, 1.0).Ms >= get(GeoSpark, 1.0).Ms {
		t.Errorf("ST4ML (%.1f ms) should beat GeoSpark-like (%.1f ms) at full scale",
			get(ST4MLB, 1.0).Ms, get(GeoSpark, 1.0).Ms)
	}
	// The formatter renders.
	if tab := Fig7SweepTable(rows); len(tab.Rows) != 4 {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
}
