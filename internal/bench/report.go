package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"st4ml/internal/engine"
)

// Table is a simple column-aligned report the experiment drivers print.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable starts a report table.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row, formatting each cell with %v (floats as %.3g via F).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// EngineCountersTable renders a Context's execution counters — including
// the fault-tolerance counters (task retries, speculative duplicates, and
// corrupt-block rereads) — as a one-row report table.
func EngineCountersTable(s engine.Snapshot) *Table {
	t := NewTable("Engine counters",
		"tasks", "records", "shuffleRecords", "shuffleMB", "taskTime",
		"retries", "speculated", "specWins", "corruptRereads")
	t.Add(s.TasksRun, s.RecordsOut, s.ShuffleRecords,
		float64(s.ShuffleBytes)/(1<<20), s.TaskTime,
		s.TaskRetries, s.SpeculativeLaunched, s.SpeculativeWins, s.CorruptRereads)
	return t
}

// WriteJSONRow writes row as a single-line JSON object tagged with the
// experiment name — the machine-readable twin of the text tables, so
// successive runs can be appended to a .jsonl file and the perf trajectory
// tracked across commits.
func WriteJSONRow(w io.Writer, exp string, row any) error {
	b, err := json.Marshal(row)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "{\"exp\":%q,\"data\":%s}\n", exp, b)
	return err
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	var sb strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	for _, row := range t.Rows {
		sb.Reset()
		for i, c := range row {
			pad := 0
			if i < len(widths) {
				pad = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", pad, c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	fmt.Fprintln(w)
}
