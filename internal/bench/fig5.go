package bench

import (
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
)

// Fig5Row is one point of Fig. 5: selection cost with and without the
// on-disk metadata index, at one query-range fraction.
type Fig5Row struct {
	Dataset       string
	Frac          float64
	NativeMs      float64
	IndexedMs     float64
	LoadedNative  int64 // records loaded by the native full-scan path
	LoadedIndexed int64 // records loaded after metadata pruning
	Selected      int64 // records actually matching the windows
	// Byte-level view of the same pruning (the memory plot of Fig. 5c/d).
	BytesNative  int64
	BytesIndexed int64
	// Block-granularity view (storage format v2): the indexed path
	// additionally skips blocks inside loaded partitions whose footer bounds
	// miss the window, so it decompresses fewer bytes than it loads.
	BlocksScanned int64
	BlocksPruned  int64
	RawNative     int64 // bytes decompressed by the full-scan path
	RawIndexed    int64 // bytes decompressed after partition + block pruning
}

// Fig5 measures loading+selection with the native path (load everything,
// filter in memory — Fig. 5's "native Spark") against the metadata-pruned
// path (§4.1), per dataset and query-range fraction, summing over
// queriesPerFrac sequential random windows.
func Fig5(env *Env, fracs []float64, queriesPerFrac int) []Fig5Row {
	var rows []Fig5Row
	evSel := selection.New(env.Ctx, stdata.EventRecC, stdata.EventRec.Box, nil,
		selection.Config{Index: true})
	trSel := selection.New(env.Ctx, stdata.TrajRecC, stdata.TrajRec.Box, nil,
		selection.Config{Index: true})
	for _, frac := range fracs {
		rows = append(rows, fig5Dataset(env, "event", frac, queriesPerFrac,
			func(w selection.Window, pruned bool) (selection.Stats, error) {
				if pruned {
					_, st, err := evSel.SelectPruned(env.EventDir, w)
					return st, err
				}
				_, st, err := evSel.Select(env.EventDir, w)
				return st, err
			}))
		rows = append(rows, fig5Dataset(env, "traj", frac, queriesPerFrac,
			func(w selection.Window, pruned bool) (selection.Stats, error) {
				if pruned {
					_, st, err := trSel.SelectPruned(env.TrajDir, w)
					return st, err
				}
				_, st, err := trSel.Select(env.TrajDir, w)
				return st, err
			}))
	}
	return rows
}

func fig5Dataset(
	env *Env, dataset string, frac float64, queries int,
	run func(w selection.Window, pruned bool) (selection.Stats, error),
) Fig5Row {
	extent := datagen.NYCExtent
	if dataset == "traj" {
		extent = datagen.PortoExtent
	}
	windows := RandomWindows(extent, datagen.Year2013, frac, queries, int64(frac*1000)+7)
	row := Fig5Row{Dataset: dataset, Frac: frac}
	for _, w := range windows {
		t0 := time.Now()
		st, err := run(w, false)
		if err != nil {
			panic(err)
		}
		row.NativeMs += float64(time.Since(t0).Microseconds()) / 1000
		row.LoadedNative += st.LoadedRecords
		row.BytesNative += st.LoadedBytes
		row.RawNative += st.DecompressedBytes
		row.Selected += st.SelectedRecords

		t0 = time.Now()
		st, err = run(w, true)
		if err != nil {
			panic(err)
		}
		row.IndexedMs += float64(time.Since(t0).Microseconds()) / 1000
		row.LoadedIndexed += st.LoadedRecords
		row.BytesIndexed += st.LoadedBytes
		row.RawIndexed += st.DecompressedBytes
		row.BlocksScanned += st.BlocksScanned
		row.BlocksPruned += st.BlocksPruned
	}
	return row
}

// Fig5Table formats the rows.
func Fig5Table(rows []Fig5Row) *Table {
	t := NewTable("Fig 5: selection time and loaded data, native vs on-disk index",
		"dataset", "range", "native_ms", "indexed_ms", "saving",
		"loaded_native", "loaded_indexed", "selected", "pruned_frac",
		"mb_native", "mb_indexed", "blk_scan", "blk_prune", "raw_mb_nat", "raw_mb_idx")
	for _, r := range rows {
		saving := 0.0
		if r.NativeMs > 0 {
			saving = 1 - r.IndexedMs/r.NativeMs
		}
		prunedFrac := 0.0
		if irrelevant := r.LoadedNative - r.Selected; irrelevant > 0 {
			prunedFrac = float64(r.LoadedNative-r.LoadedIndexed) / float64(irrelevant)
		}
		t.Add(r.Dataset, r.Frac, r.NativeMs, r.IndexedMs, saving,
			r.LoadedNative, r.LoadedIndexed, r.Selected, prunedFrac,
			float64(r.BytesNative)/(1<<20), float64(r.BytesIndexed)/(1<<20),
			r.BlocksScanned, r.BlocksPruned,
			float64(r.RawNative)/(1<<20), float64(r.RawIndexed)/(1<<20))
	}
	return t
}
