package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
)

// The encode experiment is the storage-format-v3 headline: the same event
// corpus stored under all three on-disk generations at their shipping
// defaults — v1 monolithic gzip, v2 row-major gzip blocks, v3 columnar
// streams — queried with identical window sets. v3 should decompress a
// small fraction of v2's bytes on narrow ranges (delta varint columns
// decode only what survives; no gzip anywhere) and finish several times
// faster, while every format selects exactly the same records.

// EncodeRow is one (format, range-fraction) measurement.
type EncodeRow struct {
	Format            string  `json:"format"` // "v1" | "v2" | "v3"
	Frac              float64 `json:"frac"`
	WallMs            float64 `json:"wall_ms"`
	Selected          int64   `json:"selected"`
	LoadedBytes       int64   `json:"loaded_bytes"`
	DecompressedBytes int64   `json:"decompressed_bytes"`
	BlocksScanned     int64   `json:"blocks_scanned"`
	BlocksPruned      int64   `json:"blocks_pruned"`
	RecordsPruned     int64   `json:"records_pruned"`
	DiskBytes         int64   `json:"disk_bytes"`
}

// EncodeSummary condenses the acceptance criteria: ratios of v2-gzip over
// v3 on the smallest range fraction, and whether selected counts agreed
// across every format at every fraction.
type EncodeSummary struct {
	SmallFrac       float64 `json:"small_frac"`
	V2OverV3Bytes   float64 `json:"v2_over_v3_decompressed"`
	V2OverV3Wall    float64 `json:"v2_over_v3_wall"`
	V1DiskBytes     int64   `json:"v1_disk_bytes"`
	V2DiskBytes     int64   `json:"v2_disk_bytes"`
	V3DiskBytes     int64   `json:"v3_disk_bytes"`
	SelectedAgree   bool    `json:"selected_agree"`
	RecordsPrunedV3 int64   `json:"v3_records_pruned"`
	QueriesPerFrac  int     `json:"queries_per_frac"`
	FormatsCompared int     `json:"formats_compared"`
}

// EncodeBench ingests env.Events three times under workdir — once per
// format generation, each at its defaults (v1/v2 gzip; v3 columnar,
// uncompressed by design) — and sweeps the readbench-style window
// workload over all three.
func EncodeBench(env *Env, workdir string, fracs []float64, queriesPerFrac int) ([]EncodeRow, EncodeSummary, error) {
	type store struct {
		format string
		dir    string
		opts   selection.IngestOptions
	}
	stores := []store{
		{"v1", filepath.Join(workdir, "encode-v1"), selection.IngestOptions{
			Name: "nyc", Compress: true, SampleFrac: 0.05, Seed: 1, Version: 1}},
		{"v2", filepath.Join(workdir, "encode-v2"), selection.IngestOptions{
			Name: "nyc", Compress: true, SampleFrac: 0.05, Seed: 1, Version: 2}},
		{"v3", filepath.Join(workdir, "encode-v3"), selection.IngestOptions{
			Name: "nyc", SampleFrac: 0.05, Seed: 1, Version: 3}},
	}
	disk := map[string]int64{}
	for _, s := range stores {
		r := engine.Parallelize(env.Ctx, env.Events, 0)
		meta, err := selection.Ingest(r, s.dir, stdata.EventRecC, stdata.EventRec.Box,
			partition.TSTR{GT: 12, GS: 8}, s.opts)
		if err != nil {
			return nil, EncodeSummary{}, err
		}
		for _, p := range meta.Partitions {
			disk[s.format] += p.Bytes
		}
	}
	sel := selection.New(env.Ctx, stdata.EventRecC, stdata.EventRec.Box, nil,
		selection.Config{Index: true})
	var rows []EncodeRow
	sum := EncodeSummary{
		SmallFrac:       fracs[0],
		SelectedAgree:   true,
		QueriesPerFrac:  queriesPerFrac,
		FormatsCompared: len(stores),
		V1DiskBytes:     disk["v1"],
		V2DiskBytes:     disk["v2"],
		V3DiskBytes:     disk["v3"],
	}
	for _, frac := range fracs {
		if frac < sum.SmallFrac {
			sum.SmallFrac = frac
		}
	}
	for _, frac := range fracs {
		windows := RandomWindows(datagen.NYCExtent, datagen.Year2013, frac,
			queriesPerFrac, int64(frac*1000)+29)
		var fracRows []EncodeRow
		for _, s := range stores {
			row := EncodeRow{Format: s.format, Frac: frac, DiskBytes: disk[s.format]}
			for _, w := range windows {
				t0 := time.Now()
				_, st, err := sel.SelectPruned(s.dir, w)
				if err != nil {
					return nil, EncodeSummary{}, err
				}
				row.WallMs += float64(time.Since(t0).Microseconds()) / 1000
				row.Selected += st.SelectedRecords
				row.LoadedBytes += st.LoadedBytes
				row.DecompressedBytes += st.DecompressedBytes
				row.BlocksScanned += st.BlocksScanned
				row.BlocksPruned += st.BlocksPruned
				row.RecordsPruned += st.RecordsPruned
			}
			fracRows = append(fracRows, row)
		}
		for _, r := range fracRows[1:] {
			if r.Selected != fracRows[0].Selected {
				sum.SelectedAgree = false
			}
		}
		if frac == sum.SmallFrac {
			var v2, v3 *EncodeRow
			for i := range fracRows {
				switch fracRows[i].Format {
				case "v2":
					v2 = &fracRows[i]
				case "v3":
					v3 = &fracRows[i]
				}
			}
			if v2 != nil && v3 != nil {
				sum.V2OverV3Bytes = ratio(float64(v2.DecompressedBytes), float64(v3.DecompressedBytes))
				sum.V2OverV3Wall = ratio(v2.WallMs, v3.WallMs)
				sum.RecordsPrunedV3 = v3.RecordsPruned
			}
		}
		rows = append(rows, fracRows...)
	}
	return rows, sum, nil
}

// EncodeTable formats the rows.
func EncodeTable(rows []EncodeRow) *Table {
	t := NewTable("Encode: storage v1/v2 (gzip rows) vs v3 (columnar) selection",
		"format", "range", "wall_ms", "selected",
		"mb_loaded", "mb_decompressed", "blk_scan", "blk_prune", "rec_prune", "mb_disk")
	for _, r := range rows {
		t.Add(r.Format, r.Frac, r.WallMs, r.Selected,
			float64(r.LoadedBytes)/(1<<20), float64(r.DecompressedBytes)/(1<<20),
			r.BlocksScanned, r.BlocksPruned, r.RecordsPruned,
			float64(r.DiskBytes)/(1<<20))
	}
	return t
}

// EncodeSummaryTable formats the acceptance summary.
func EncodeSummaryTable(s EncodeSummary) *Table {
	t := NewTable(
		fmt.Sprintf("Encode summary (small range %.2f): v2-gzip / v3 ratios", s.SmallFrac),
		"metric", "value")
	t.Add("decompressed bytes ratio", s.V2OverV3Bytes)
	t.Add("wall-clock ratio", s.V2OverV3Wall)
	t.Add("selected counts agree", fmt.Sprint(s.SelectedAgree))
	t.Add("v3 records pruned", s.RecordsPrunedV3)
	t.Add("disk MB v1/v2/v3", fmt.Sprintf("%.1f / %.1f / %.1f",
		float64(s.V1DiskBytes)/(1<<20), float64(s.V2DiskBytes)/(1<<20), float64(s.V3DiskBytes)/(1<<20)))
	return t
}
