package bench

import (
	"fmt"
	"path/filepath"

	"st4ml/internal/engine"
)

// Fig7SweepRow is one (scale, app, system) measurement of the Fig. 7 data
// scale sweep — the x-axis of the paper's subfigures.
type Fig7SweepRow struct {
	ScaleFrac float64
	Fig7Row
}

// Fig7Sweep rebuilds the environment at each fraction of the base scale
// and reruns the applications, exposing how each system's time grows with
// data volume (the paper's "ST4ML grows much slower" claim).
func Fig7Sweep(
	ctx *engine.Context,
	baseDir string,
	base Scale,
	fractions []float64,
	apps []App,
	systems []SystemKind,
	windowFrac float64,
	numWindows int,
) ([]Fig7SweepRow, error) {
	var rows []Fig7SweepRow
	for _, f := range fractions {
		scaled := Scale{
			Events: int(float64(base.Events) * f),
			Trajs:  int(float64(base.Trajs) * f),
			POIs:   int(float64(base.POIs) * f),
			Areas:  base.Areas,
			AirSta: maxInt(1, int(float64(base.AirSta)*f)),
		}
		dir := filepath.Join(baseDir, fmt.Sprintf("scale-%0.2f", f))
		env, err := NewEnv(ctx, dir, scaled)
		if err != nil {
			return nil, fmt.Errorf("fig7 sweep at %g: %w", f, err)
		}
		sub, err := Fig7(env, apps, systems, windowFrac, numWindows)
		if err != nil {
			return nil, err
		}
		for _, r := range sub {
			rows = append(rows, Fig7SweepRow{ScaleFrac: f, Fig7Row: r})
		}
	}
	return rows, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig7SweepTable formats the sweep with per-system growth factors between
// the smallest and largest scale.
func Fig7SweepTable(rows []Fig7SweepRow) *Table {
	t := NewTable("Fig 7 scale sweep: processing time vs data size (ms)",
		"app", "system", "scale", "ms", "vs_st4ml")
	base := map[string]float64{}
	for _, r := range rows {
		if r.System == ST4MLB {
			base[string(r.App)+fmt.Sprint(r.ScaleFrac)] = r.Ms
		}
	}
	for _, r := range rows {
		rel := 0.0
		if b := base[string(r.App)+fmt.Sprint(r.ScaleFrac)]; b > 0 {
			rel = r.Ms / b
		}
		t.Add(string(r.App), string(r.System), r.ScaleFrac, r.Ms, rel)
	}
	return t
}
