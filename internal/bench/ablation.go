package bench

import (
	"fmt"
	"time"

	"st4ml/internal/codec"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/index"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// Ablation experiments isolating individual design choices (DESIGN.md's
// ablation list). Each returns the two alternatives' times so callers and
// benchmarks report the ratio.

// AblationShuffle compares the engine's reduceByKey (map-side combine)
// against groupByKey (full shuffle) on a keyed count — the §2.2 example of
// why operator choice matters on Spark.
func AblationShuffle(ctx *engine.Context, n, keys int) (reduceMs, groupMs float64, shuffledReduce, shuffledGroup int64) {
	pairs := make([]codec.Pair[int64, int64], n)
	for i := range pairs {
		pairs[i] = codec.KV(int64(i%keys), int64(1))
	}
	r := engine.Parallelize(ctx, pairs, 0)

	ctx.Metrics.Reset()
	t0 := time.Now()
	engine.ReduceByKey(r, codec.Int64, codec.Int64,
		func(a, b int64) int64 { return a + b }, 0).Count()
	reduceMs = msSince(t0)
	shuffledReduce = ctx.Metrics.Snapshot().ShuffleRecords

	ctx.Metrics.Reset()
	t0 = time.Now()
	grouped := engine.GroupByKey(r, codec.Int64, codec.Int64, 0)
	engine.MapValues(grouped, func(vs []int64) int64 {
		var s int64
		for _, v := range vs {
			s += v
		}
		return s
	}).Count()
	groupMs = msSince(t0)
	shuffledGroup = ctx.Metrics.Snapshot().ShuffleRecords
	return reduceMs, groupMs, shuffledReduce, shuffledGroup
}

// AblationSelectorIndex compares multi-window selection with and without
// the per-partition on-the-fly R-tree (§3.1): indexing amortizes across
// windows selected from one load.
func AblationSelectorIndex(env *Env, numWindows int) (indexedMs, scanMs float64) {
	windows := RandomWindows(datagen.NYCExtent, datagen.Year2013, 0.1, numWindows, 71)
	run := func(useIndex bool) float64 {
		sel := selection.New(env.Ctx, stdata.EventRecC, stdata.EventRec.Box, nil,
			selection.Config{Index: useIndex})
		t0 := time.Now()
		if _, _, err := sel.Select(env.EventDir, windows...); err != nil {
			panic(err)
		}
		return msSince(t0)
	}
	return run(true), run(false)
}

// AblationCompression compares reading a dataset stored plain against
// gzip-compressed, returning times and on-disk bytes.
func AblationCompression(env *Env, dir string) (plainMs, gzipMs float64, plainBytes, gzipBytes int64) {
	recs := env.Events
	r := engine.Parallelize(env.Ctx, recs, 0)
	plainDir, gzipDir := dir+"/abl-plain", dir+"/abl-gzip"
	// Pinned to v2: the gzip-vs-plain ablation is about the v2 layout's
	// Compress flag; v3 never gzips.
	mp, err := selection.IngestUnpartitioned(r, plainDir, stdata.EventRecC, stdata.EventRec.Box,
		selection.IngestOptions{Name: "plain", Version: 2})
	if err != nil {
		panic(err)
	}
	mg, err := selection.IngestUnpartitioned(r, gzipDir, stdata.EventRecC, stdata.EventRec.Box,
		selection.IngestOptions{Name: "gzip", Version: 2, Compress: true})
	if err != nil {
		panic(err)
	}
	for _, p := range mp.Partitions {
		plainBytes += p.Bytes
	}
	for _, p := range mg.Partitions {
		gzipBytes += p.Bytes
	}
	readAll := func(d string, meta *storage.Metadata) float64 {
		t0 := time.Now()
		for i := 0; i < meta.NumPartitions(); i++ {
			if _, err := storage.ReadPartition(d, meta, i, stdata.EventRecC); err != nil {
				panic(err)
			}
		}
		return msSince(t0)
	}
	return readAll(plainDir, mp), readAll(gzipDir, mg), plainBytes, gzipBytes
}

// AblationRTreeBuild compares STR bulk loading against one-by-one Guttman
// insertion for the throwaway per-partition selection indexes.
func AblationRTreeBuild(n int) (bulkMs, insertMs float64) {
	events := datagen.NYC(n, 13)
	items := make([]index.Item[int], len(events))
	for i, e := range events {
		items[i] = index.Item[int]{Box: e.Box(), Data: i}
	}
	t0 := time.Now()
	index.BulkLoadSTR(items, 16)
	bulkMs = msSince(t0)

	t0 = time.Now()
	tree := index.NewRTree[int](16)
	for _, it := range items {
		tree.Insert(it.Box, it.Data)
	}
	insertMs = msSince(t0)
	return bulkMs, insertMs
}

// AblationTable formats ablation results.
func AblationTable(env *Env, workDir string) *Table {
	t := NewTable("Ablations: individual design choices",
		"choice", "optimized_ms", "baseline_ms", "ratio", "note")
	rMs, gMs, rShuf, gShuf := AblationShuffle(env.Ctx, 200_000, 64)
	t.Add("reduceByKey vs groupByKey", rMs, gMs, ratio(gMs, rMs),
		formatShuffle(rShuf, gShuf))
	iMs, sMs := AblationSelectorIndex(env, 10)
	t.Add("per-partition R-tree vs scan", iMs, sMs, ratio(sMs, iMs), "10 windows/load")
	pMs, zMs, pB, zB := AblationCompression(env, workDir)
	t.Add("plain vs gzip read", pMs, zMs, ratio(zMs, pMs), formatBytes(pB, zB))
	bMs, insMs := AblationRTreeBuild(50_000)
	t.Add("STR bulk vs insert build", bMs, insMs, ratio(insMs, bMs), "50k boxes")
	return t
}

func formatShuffle(r, g int64) string {
	return fmt.Sprintf("shuffled %d vs %d records", r, g)
}

func formatBytes(p, z int64) string {
	return fmt.Sprintf("%d vs %d bytes", p, z)
}
