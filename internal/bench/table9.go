package bench

import (
	"time"

	"st4ml/internal/codec"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/mapmatch"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

// Table 9 / case study 2: road-network flow extraction. Sparse camera
// trajectories are map-matched with the HMM trajectory-to-trajectory
// conversion, the matched paths (including inferred connecting segments)
// are converted to a raster of (road segment × 1 h), and per-segment hourly
// flows come out — the pipeline the paper says cannot be expressed by
// simply extending GeoSpark or GeoMesa.

// Table9Row is one day of the road-flow case study.
type Table9Row struct {
	Day          int
	Amount       int
	AvgPoints    float64
	AvgDurMin    float64
	ProcessingMs float64
	// SegmentsWithFlow counts road segments that received any flow,
	// including camera-free segments inferred via path connection.
	SegmentsWithFlow int
	TotalFlow        int64
}

// Table9 runs the road-flow extraction for the given days with nPerDay
// trajectories each.
func Table9(ctx *engine.Context, city *CaseStudyCity, days, nPerDay int) []Table9Row {
	matcher := mapmatch.New(city.Graph, mapmatch.Config{SigmaZ: 15})
	rows := make([]Table9Row, 0, days)
	for day := 0; day < days; day++ {
		trajs := datagen.Camera(city.Graph, nPerDay, day, 31)
		count, avgPts, avgDur := datagen.DescribeTrajs(trajs)
		t0 := time.Now()
		segFlow, total := roadFlow(ctx, city, matcher, trajs)
		rows = append(rows, Table9Row{
			Day:              day,
			Amount:           count,
			AvgPoints:        avgPts,
			AvgDurMin:        avgDur,
			ProcessingMs:     msSince(t0),
			SegmentsWithFlow: segFlow,
			TotalFlow:        total,
		})
	}
	return rows
}

// matchedPath carries one trajectory's inferred edge traversal with the
// traversal start hour.
type matchedPath struct {
	Hour  int
	Edges []int32
}

// roadFlow runs the end-to-end pipeline: parallel map matching, then a
// ReduceByKey aggregation of (segment, hour) flows.
func roadFlow(ctx *engine.Context, city *CaseStudyCity, matcher *mapmatch.Matcher, trajs []stdata.TrajRec) (segmentsWithFlow int, totalFlow int64) {
	r := engine.Parallelize(ctx, trajs, 0)
	paths := engine.FlatMap(r, func(rec stdata.TrajRec) []matchedPath {
		tr := rec.ToTrajectory()
		_, path, err := mapmatch.MatchTrajectory(matcher, tr)
		if err != nil || len(path) == 0 {
			return nil
		}
		edges := make([]int32, len(path))
		for i, e := range path {
			edges[i] = int32(e)
		}
		return []matchedPath{{
			Hour:  int(tempo.HourOfDay(rec.Times[0])),
			Edges: edges,
		}}
	})
	// Flow per (segment, hour) via map-side-combining reduceByKey.
	type segHour = codec.Pair[int64, int64] // key: edge<<8 | hour
	flowPairs := engine.FlatMap(paths, func(m matchedPath) []segHour {
		out := make([]segHour, len(m.Edges))
		for i, e := range m.Edges {
			out[i] = codec.KV(int64(e)<<8|int64(m.Hour), int64(1))
		}
		return out
	})
	flows := engine.ReduceByKey(flowPairs, codec.Int64, codec.Int64,
		func(a, b int64) int64 { return a + b }, 0)
	segs := map[int64]bool{}
	for _, p := range flows.Collect() {
		segs[p.Key>>8] = true
		totalFlow += p.Value
	}
	return len(segs), totalFlow
}

// Table9Table formats the rows in the paper's layout.
func Table9Table(rows []Table9Row) *Table {
	t := NewTable("Table 9: road-network flow extraction (map matching + inference)",
		"day", "amount", "avg_points", "avg_dur_min", "processing_ms",
		"segments_with_flow", "total_flow")
	for _, r := range rows {
		t.Add(r.Day, r.Amount, r.AvgPoints, r.AvgDurMin, r.ProcessingMs,
			r.SegmentsWithFlow, r.TotalFlow)
	}
	return t
}
