package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
)

// ServeResult is one serving-benchmark row: the same query mix issued over
// HTTP against a cold stserved instance (every query misses the result
// cache and loads partitions from disk) and then replayed fully hot (every
// query is answered from the result cache).
type ServeResult struct {
	Events         int     `json:"events"`
	Partitions     int     `json:"partitions"`
	Clients        int     `json:"clients"`
	Queries        int     `json:"queries"`
	ColdMeanMS     float64 `json:"cold_mean_ms"`
	ColdP95MS      float64 `json:"cold_p95_ms"`
	ColdQPS        float64 `json:"cold_qps"`
	HotMeanMS      float64 `json:"hot_mean_ms"`
	HotP95MS       float64 `json:"hot_p95_ms"`
	HotQPS         float64 `json:"hot_qps"`
	PartitionLoads int64   `json:"partition_loads"`
	ResultHits     int64   `json:"result_cache_hits"`
	Shed           int64   `json:"shed"`
}

// Serve benchmarks the serving tier end to end: ingest an NYC-like store,
// register it with a serve.Server, and drive clients concurrent HTTP
// clients through windowsPerClient distinct random windows each — once
// cold, then the identical mix again hot. The gap between the two passes is
// the amortization the daemon exists for; the counters prove where it came
// from (partition loads bounded by the store size, one result hit per hot
// query).
func Serve(ctx *engine.Context, workdir string, events, clients, windowsPerClient int) (ServeResult, error) {
	sch, ok := stdata.Lookup("nyc")
	if !ok {
		return ServeResult{}, fmt.Errorf("bench: nyc schema not registered")
	}
	dir := filepath.Join(workdir, "serve-nyc")
	meta, err := sch.Ingest(ctx, datagen.NYC(events, 11), dir, sch.DefaultPlanner(8, 4),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.05, Seed: 11})
	if err != nil {
		return ServeResult{}, err
	}

	srv := serve.NewServer(serve.Config{
		Ctx: ctx,
		// Generous admission so the benchmark measures latency, not
		// shedding; Shed staying zero is part of the expected shape.
		MaxInFlight: 2 * clients,
		MaxQueue:    2 * clients,
	})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		return ServeResult{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	total := clients * windowsPerClient
	windows := RandomWindows(datagen.NYCExtent, datagen.Year2013, 0.15, total, 11)
	bodies := make([][]byte, total)
	for i, w := range windows {
		bodies[i], err = json.Marshal(serve.QueryRequest{
			Dataset: "nyc",
			MinX:    w.Space.MinX, MinY: w.Space.MinY,
			MaxX: w.Space.MaxX, MaxY: w.Space.MaxY,
			TStart: w.Time.Start, TEnd: w.Time.End,
		})
		if err != nil {
			return ServeResult{}, err
		}
	}

	res := ServeResult{
		Events:     events,
		Partitions: meta.NumPartitions(),
		Clients:    clients,
		Queries:    total,
	}
	res.ColdMeanMS, res.ColdP95MS, res.ColdQPS, err =
		servePass(ts.URL, bodies, clients, &res.Shed)
	if err != nil {
		return ServeResult{}, err
	}
	res.HotMeanMS, res.HotP95MS, res.HotQPS, err =
		servePass(ts.URL, bodies, clients, &res.Shed)
	if err != nil {
		return ServeResult{}, err
	}

	var metrics serve.MetricsResponse
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return ServeResult{}, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		return ServeResult{}, err
	}
	res.PartitionLoads = metrics.Server.PartitionLoads
	res.ResultHits = metrics.Server.ResultHits
	return res, nil
}

// servePass issues every body once, partitioned round-robin across clients
// concurrent goroutines, and returns mean/p95 latency (ms) and overall
// queries/sec. 429/504 responses count into shed; any other non-200 fails
// the pass.
func servePass(url string, bodies [][]byte, clients int, shed *int64) (mean, p95, qps float64, err error) {
	latencies := make([]float64, len(bodies))
	errs := make([]error, clients)
	var shedN int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(bodies); i += clients {
				t0 := time.Now()
				resp, err := http.Post(url+"/query", "application/json",
					bytes.NewReader(bodies[i]))
				if err != nil {
					errs[c] = err
					return
				}
				resp.Body.Close()
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests, http.StatusGatewayTimeout:
					mu.Lock()
					shedN++
					mu.Unlock()
				default:
					errs[c] = fmt.Errorf("query %d: HTTP %d", i, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, e := range errs {
		if e != nil {
			return 0, 0, 0, e
		}
	}
	*shed += shedN

	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	var sum float64
	for _, l := range sorted {
		sum += l
	}
	mean = sum / float64(len(sorted))
	p95 = sorted[len(sorted)*95/100]
	if elapsed > 0 {
		qps = float64(len(bodies)) / elapsed
	}
	return mean, p95, qps, nil
}

// ServeTable formats the serving row.
func ServeTable(r ServeResult) *Table {
	t := NewTable("Serving: cold vs hot result cache over HTTP",
		"events", "parts", "clients", "queries",
		"cold_ms", "cold_p95", "cold_qps", "hot_ms", "hot_p95", "hot_qps",
		"partLoads", "resHits", "shed")
	t.Add(r.Events, r.Partitions, r.Clients, r.Queries,
		r.ColdMeanMS, r.ColdP95MS, r.ColdQPS, r.HotMeanMS, r.HotP95MS, r.HotQPS,
		r.PartitionLoads, r.ResultHits, r.Shed)
	return t
}
