package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/selection"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
	"st4ml/internal/subscribe"
	"st4ml/internal/tempo"
)

// SubscribeResult is one push-path row: a stream of committed delta
// batches fanned out through the subscription index to Subscribers
// standing full-extent windows. PushMeanMS/PushP99MS time the synchronous
// hook-driven leg — match against the window index plus enqueue to every
// subscriber — which is exactly the latency an ingest writer pays per
// commit; EventsPerSec/RecordsPerSec cover the whole path including the
// subscribers draining their queues.
type SubscribeResult struct {
	Events        int     `json:"events"`
	Subscribers   int     `json:"subscribers"`
	Batches       int     `json:"batches"`
	BatchRecords  int     `json:"batch_records"`
	PushMeanMS    float64 `json:"push_mean_ms"`
	PushP99MS     float64 `json:"push_p99_ms"`
	EventsPerSec  float64 `json:"events_per_sec"`
	RecordsPerSec float64 `json:"records_per_sec"`
	EventsPushed  int64   `json:"events_pushed"`
	Dropped       int64   `json:"dropped"`
	Resyncs       int64   `json:"resyncs"`
}

// Subscribe benchmarks the standing-query fan-out across subscriber
// counts: ingest an NYC-like base store, register full-extent
// subscriptions straight on the hub (no HTTP, so the numbers isolate the
// index + queue machinery), then commit batches of fresh events and drain
// every subscriber. Queues are sized to hold the whole run, so Dropped
// and Resyncs staying zero is part of the expected shape — every
// subscriber sees every committed record exactly once.
func Subscribe(ctx *engine.Context, workdir string, events, batches, batchRecords int, subscribers []int) ([]SubscribeResult, error) {
	sch, ok := stdata.Lookup("nyc")
	if !ok {
		return nil, fmt.Errorf("bench: nyc schema not registered")
	}
	window := selection.Window{
		Space: geom.Box(datagen.NYCExtent.MinX, datagen.NYCExtent.MinY,
			datagen.NYCExtent.MaxX, datagen.NYCExtent.MaxY),
		Time: tempo.New(0, 1<<60),
	}
	var rows []SubscribeResult
	for _, n := range subscribers {
		dir := filepath.Join(workdir, fmt.Sprintf("subscribe-nyc-%d", n))
		if _, err := sch.Ingest(ctx, datagen.NYC(events, 13), dir, sch.DefaultPlanner(8, 4),
			selection.IngestOptions{Name: "nyc", SampleFrac: 0.05, Seed: 13}); err != nil {
			return nil, err
		}
		srv := serve.NewServer(serve.Config{Ctx: ctx, SubscribePoll: -1})
		if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
			srv.Close()
			return nil, err
		}
		row, err := subscribeRun(srv, sch, dir, window, events, batches, batchRecords, n)
		srv.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func subscribeRun(srv *serve.Server, sch stdata.Schema, dir string,
	window selection.Window, events, batches, batchRecords, n int) (SubscribeResult, error) {
	// Each commit produces one event per delta file per subscriber; queue
	// bounds sized for the whole run keep overflow resyncs out of the
	// measurement.
	subs := make([]*subscribe.Subscriber, n)
	for i := range subs {
		var err error
		subs[i], err = srv.Hub().Subscribe("nyc", window, subscribe.Options{
			Queue: batches * 64,
			// The init snapshot is not under measurement; skip marshaling
			// the base store into it.
			Limit: 1,
		})
		if err != nil {
			return SubscribeResult{}, err
		}
		defer subs[i].Close()
	}
	// Drain the init events so the queues start empty.
	for _, sub := range subs {
		if _, err := nextPending(sub); err != nil {
			return SubscribeResult{}, err
		}
	}

	pushMS := make([]float64, batches)
	start := time.Now()
	for b := 0; b < batches; b++ {
		t0 := time.Now()
		if _, err := sch.Append(datagen.NYC(batchRecords, int64(1000+b)), dir,
			fmt.Sprintf("bench-sub-%d-%d", n, b)); err != nil {
			return SubscribeResult{}, err
		}
		// The commit hook runs the match + fan-out synchronously, so the
		// Append call's latency is the push cost.
		pushMS[b] = float64(time.Since(t0).Microseconds()) / 1000
	}
	// Every event is already enqueued when the last Append returns; the
	// drain leg is pure queue consumption.
	var delivered int64
	for _, sub := range subs {
		got := int64(0)
		for sub.Pending() > 0 {
			u, err := nextPending(sub)
			if err != nil {
				return SubscribeResult{}, err
			}
			if u.Kind == subscribe.KindBatch {
				got += int64(len(u.Records))
			}
		}
		if want := int64(batches * batchRecords); got != want {
			return SubscribeResult{}, fmt.Errorf(
				"bench: subscriber drained %d records, want %d", got, want)
		}
		delivered += got
	}
	elapsed := time.Since(start).Seconds()

	st := srv.Hub().Stats()
	sorted := append([]float64(nil), pushMS...)
	sort.Float64s(sorted)
	var sum float64
	for _, l := range sorted {
		sum += l
	}
	res := SubscribeResult{
		Events:       events,
		Subscribers:  n,
		Batches:      batches,
		BatchRecords: batchRecords,
		PushMeanMS:   sum / float64(len(sorted)),
		PushP99MS:    sorted[len(sorted)*99/100],
		EventsPushed: st.EventsPushed,
		Dropped:      st.EventsDropped,
		Resyncs:      st.Resyncs,
	}
	if elapsed > 0 {
		res.EventsPerSec = float64(st.EventsPushed) / elapsed
		res.RecordsPerSec = float64(delivered) / elapsed
	}
	return res, nil
}

// nextPending returns the subscriber's next queued update without
// blocking indefinitely: the bench only calls it when an update is known
// to be queued, so the timeout is a failure backstop, not pacing.
func nextPending(sub *subscribe.Subscriber) (subscribe.Update, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return sub.Next(ctx)
}

// SubscribeTable formats the push-path rows.
func SubscribeTable(rows []SubscribeResult) *Table {
	t := NewTable("Standing queries: commit fan-out vs subscriber count",
		"events", "subs", "batches", "batchRecs",
		"push_ms", "push_p99", "events/s", "records/s",
		"pushed", "dropped", "resyncs")
	for _, r := range rows {
		t.Add(r.Events, r.Subscribers, r.Batches, r.BatchRecords,
			r.PushMeanMS, r.PushP99MS, r.EventsPerSec, r.RecordsPerSec,
			r.EventsPushed, r.Dropped, r.Resyncs)
	}
	return t
}
