package bench

import (
	"math"
	"os"
	"testing"

	"st4ml/internal/engine"
)

// Shared small environment for the package's tests (building the stores is
// the slow part, so it happens once in TestMain with a directory that
// outlives individual tests).
var (
	testEnv    *Env
	testEnvErr error
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "st4ml-bench-*")
	if err != nil {
		testEnvErr = err
		os.Exit(m.Run())
	}
	defer os.RemoveAll(dir)
	ctx := engine.New(engine.Config{Slots: 4})
	testEnv, testEnvErr = NewEnv(ctx, dir, Scale{
		Events: 20_000, Trajs: 2_000, POIs: 10_000, Areas: 400, AirSta: 5,
	})
	os.Exit(m.Run())
}

func smallEnv(t *testing.T) *Env {
	t.Helper()
	if testEnvErr != nil {
		t.Fatal(testEnvErr)
	}
	return testEnv
}

// TestAllSystemsAgree verifies that all four implementations of every
// application extract the same feature (checksum agreement) — the
// correctness backbone behind the Fig. 7 comparison.
func TestAllSystemsAgree(t *testing.T) {
	env := smallEnv(t)
	for _, app := range AllApps {
		app := app
		t.Run(string(app), func(t *testing.T) {
			windows := WindowsFor(app, 0.4, 3, 99)
			var ref AppResult
			for i, sys := range AllSystems {
				got, err := RunApp(env, app, sys, windows)
				if err != nil {
					t.Fatalf("%s: %v", sys, err)
				}
				if i == 0 {
					ref = got
					if got.Records == 0 {
						t.Fatalf("%s selected no records — degenerate test", sys)
					}
					continue
				}
				if got.Records != ref.Records {
					t.Errorf("%s selected %d records, %s selected %d",
						sys, got.Records, AllSystems[0], ref.Records)
				}
				if !closeEnough(got.Checksum, ref.Checksum) {
					t.Errorf("%s checksum %.6f != %s checksum %.6f",
						sys, got.Checksum, AllSystems[0], ref.Checksum)
				}
			}
		})
	}
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6*scale+1e-9
}

func TestWindowsForCoverage(t *testing.T) {
	ws := WindowsFor(AppAnomaly, 0.3, 5, 1)
	if len(ws) != 5 {
		t.Fatalf("windows = %d", len(ws))
	}
	for _, w := range ws {
		if w.Space.IsEmpty() || w.Time.IsEmpty() {
			t.Fatal("degenerate window")
		}
	}
	if WindowsFor(AppPOICount, 0.3, 5, 1) != nil {
		t.Error("corpus-wide apps take no windows")
	}
}

func TestRunAppUnknown(t *testing.T) {
	env := smallEnv(t)
	if _, err := RunApp(env, App("nope"), ST4MLB, nil); err == nil {
		t.Error("unknown app should error")
	}
	if _, err := RunApp(env, AppAnomaly, SystemKind("nope"), nil); err == nil {
		t.Error("unknown system should error")
	}
}
