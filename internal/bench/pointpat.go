package bench

import (
	"fmt"
	"math"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/pointpat"
	"st4ml/internal/trace"
)

// The pointpat experiment measures the distributed space-time Ripley's K
// estimator against its single-partition brute-force oracle on the same
// NYC-like corpora. Two claims are on trial: the statistics are identical
// bit-for-bit (the halo exchange makes boundary pairs exact, not
// approximate), and the partitioned time-sweep tests far fewer candidate
// pairs than the O(n²) oracle — sub-quadratic pair work at realistic
// densities, with the halo volume accounted in explain.

// PointPatRow is one corpus-scale measurement of distributed vs brute.
type PointPatRow struct {
	Points     int `json:"points"`
	Partitions int `json:"partitions"`

	BruteWallMs      float64 `json:"brute_wall_ms"`
	BrutePairsTested int64   `json:"brute_pairs_tested"`
	DistWallMs       float64 `json:"dist_wall_ms"`
	DistPairsTested  int64   `json:"dist_pairs_tested"`
	PairsCounted     int64   `json:"pairs_counted"`

	HaloPoints int64 `json:"halo_points"`
	HaloBytes  int64 `json:"halo_bytes"`
	// ExplainHaloBytes is the halo volume as reported by the trace/explain
	// pipeline for the same run — it must equal HaloBytes, proving the cost
	// is observable without touching the result struct.
	ExplainHaloBytes int64 `json:"explain_halo_bytes"`

	// Identical reports bit-for-bit agreement of the distributed and brute
	// K statistics (pair counts, center counts, and the float matrices).
	Identical bool `json:"identical"`
	// PairWorkFrac is dist_pairs_tested / brute_pairs_tested — the
	// sub-quadratic headline (≪ 1 at realistic densities).
	PairWorkFrac float64 `json:"pair_work_frac"`
	Speedup      float64 `json:"brute_over_dist_wall"`
}

// pointPatGrid is the benchmark's evaluation grid: a few hundred metres of
// spatial radius (in NYC degrees) by 30–120 minutes of lag.
func pointPatGrid() pointpat.Grid {
	return pointpat.Grid{
		Radii: []float64{
			geom.MetersToDegreesLat(200),
			geom.MetersToDegreesLat(500),
			geom.MetersToDegreesLat(1000),
		},
		Lags: []int64{1800, 3600, 7200},
	}
}

// PointPat sweeps corpus scales, running the brute-force oracle and the
// distributed halo-corrected estimator on identical point sets.
func PointPat(ctx *engine.Context, scales []int, partitions int) ([]PointPatRow, error) {
	var rows []PointPatRow
	for _, n := range scales {
		corpus := datagen.NYC(n, 31)
		pts := make([]pointpat.Point, len(corpus))
		for i, e := range corpus {
			pts[i] = pointpat.Point{X: e.Loc.X, Y: e.Loc.Y, T: e.Time}
		}
		cfg := pointpat.KConfig{Grid: pointPatGrid(), Partitions: partitions}

		t0 := time.Now()
		brute, err := pointpat.BruteForceK(pts, cfg)
		if err != nil {
			return nil, err
		}
		bruteMs := float64(time.Since(t0).Microseconds()) / 1000

		// A per-run tracer captures the halo/paircount spans so the row can
		// cross-check the explain report against the result's own counters.
		tr := trace.New()
		tctx := ctx.WithTracer(tr, 0)
		t0 = time.Now()
		dist, err := pointpat.DistributedK(tctx, pts, cfg)
		if err != nil {
			return nil, err
		}
		distMs := float64(time.Since(t0).Microseconds()) / 1000

		row := PointPatRow{
			Points: n, Partitions: dist.Partitions,
			BruteWallMs: bruteMs, BrutePairsTested: brute.PairsTested,
			DistWallMs: distMs, DistPairsTested: dist.PairsTested,
			PairsCounted: dist.PairsCounted,
			HaloPoints:   dist.HaloPoints, HaloBytes: dist.HaloBytes,
			Identical:    sameKResult(dist, brute),
			PairWorkFrac: ratio(float64(dist.PairsTested), float64(brute.PairsTested)),
			Speedup:      ratio(bruteMs, distMs),
		}
		if e := trace.Build(tr.Snapshot()); e != nil && e.PointPat != nil {
			row.ExplainHaloBytes = e.PointPat.HaloBytes
		}
		if row.ExplainHaloBytes != row.HaloBytes {
			return nil, fmt.Errorf("bench: explain halo bytes %d != result halo bytes %d",
				row.ExplainHaloBytes, row.HaloBytes)
		}
		if !row.Identical {
			return nil, fmt.Errorf("bench: distributed K diverged from brute force at n=%d", n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// sameKResult reports bit-for-bit agreement of two K results.
func sameKResult(a, b *pointpat.KResult) bool {
	if a.N != b.N || a.Region != b.Region {
		return false
	}
	for r := range a.K {
		for l := range a.K[r] {
			if a.Pairs[r][l] != b.Pairs[r][l] || a.Centers[r][l] != b.Centers[r][l] ||
				math.Float64bits(a.K[r][l]) != math.Float64bits(b.K[r][l]) {
				return false
			}
		}
	}
	return true
}

// PointPatTable formats the rows.
func PointPatTable(rows []PointPatRow) *Table {
	t := NewTable("PointPat: distributed halo-corrected Ripley's K vs brute force",
		"points", "parts", "brute_ms", "dist_ms", "speedup",
		"brute_pairs", "dist_pairs", "pair_frac", "halo_pts", "halo_kb", "identical")
	for _, r := range rows {
		t.Add(r.Points, r.Partitions, r.BruteWallMs, r.DistWallMs, r.Speedup,
			r.BrutePairsTested, r.DistPairsTested, r.PairWorkFrac,
			r.HaloPoints, float64(r.HaloBytes)/1024, fmt.Sprint(r.Identical))
	}
	return t
}
