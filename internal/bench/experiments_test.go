package bench

import (
	"strings"
	"testing"

	"st4ml/internal/engine"
)

// These tests verify that the regenerated experiments have the paper's
// qualitative shape at small scale (see DESIGN.md / EXPERIMENTS.md).

func TestFig5Shape(t *testing.T) {
	env := smallEnv(t)
	rows := Fig5(env, []float64{0.1, 0.4}, 3)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Pruned path loads no more than the native path and never loses
		// selected records.
		if r.LoadedIndexed > r.LoadedNative {
			t.Errorf("%s@%.1f: indexed loaded more (%d > %d)",
				r.Dataset, r.Frac, r.LoadedIndexed, r.LoadedNative)
		}
		if r.Selected > r.LoadedIndexed {
			t.Errorf("%s@%.1f: selected %d > loaded %d",
				r.Dataset, r.Frac, r.Selected, r.LoadedIndexed)
		}
	}
	// Smaller ranges prune more (paper: savings more notable on smaller
	// ranges).
	small, large := rows[0], rows[2]
	if small.Dataset != large.Dataset {
		t.Fatal("row layout changed")
	}
	if small.LoadedIndexed >= large.LoadedIndexed {
		t.Errorf("smaller range should load less: %d vs %d",
			small.LoadedIndexed, large.LoadedIndexed)
	}
}

func TestFig6Shape(t *testing.T) {
	env := smallEnv(t)
	rows := Fig6(env, []int{64}, []int{16}, []int{8})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NaiveMs <= 0 || r.RTreeMs <= 0 || r.RegularMs <= 0 {
			t.Errorf("%+v: missing timing", r)
		}
		// The optimized methods must beat naive Cartesian allocation.
		if r.RTreeMs >= r.NaiveMs {
			t.Errorf("%s->%s@%d: rtree (%.1f ms) not faster than naive (%.1f ms)",
				r.Dataset, r.Target, r.Granularity, r.RTreeMs, r.NaiveMs)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	env := smallEnv(t)
	rows := Table5(env, 64, 8, 8)
	get := func(name, dataset string) Table5Row {
		for _, r := range rows {
			if r.Partitioner == name && r.Dataset == dataset {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", name, dataset)
		return Table5Row{}
	}
	for _, ds := range []string{"event", "traj"} {
		hash := get("Native(Hash)", ds)
		tstr := get("ST4ML(T-STR)", ds)
		kd := get("GeoSpark(KD)", ds)
		// Hash: best CV, worst OV (every partition spans everything).
		if hash.CV > 0.2 {
			t.Errorf("%s: hash CV = %.3f, want ~0", ds, hash.CV)
		}
		if hash.OV <= tstr.OV {
			t.Errorf("%s: hash OV (%.2f) should exceed T-STR OV (%.2f)",
				ds, hash.OV, tstr.OV)
		}
		// T-STR: better ST locality than the spatial-only KD partitioning.
		if tstr.OV >= kd.OV {
			t.Errorf("%s: T-STR OV (%.2f) should beat KD OV (%.2f)", ds, tstr.OV, kd.OV)
		}
		// T-STR stays reasonably balanced.
		if tstr.CV > 1.0 {
			t.Errorf("%s: T-STR CV = %.3f too high", ds, tstr.CV)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	env := smallEnv(t)
	res, err := Table6(env, t.TempDir(), 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompEventPairs == 0 {
		t.Error("no event companions found — degenerate workload")
	}
	// The load benefit is the robust Table 6 claim: T-STR's temporal
	// partitioning prunes selection I/O that 2-d STR cannot.
	if res.LoadEventTSTR >= res.LoadEventSTR2D {
		t.Errorf("T-STR event loading (%.1f ms) not faster than 2-d STR (%.1f ms)",
			res.LoadEventTSTR, res.LoadEventSTR2D)
	}
	if res.LoadTrajTSTR >= res.LoadTrajSTR2D*1.2 {
		t.Errorf("T-STR traj loading (%.1f ms) much slower than 2-d STR (%.1f ms)",
			res.LoadTrajTSTR, res.LoadTrajSTR2D)
	}
}

func TestFig7Shape(t *testing.T) {
	env := smallEnv(t)
	rows, err := Fig7(env, []App{AppHourlyFlow, AppPOICount},
		[]SystemKind{ST4MLB, GeoMesaK, GeoSpark}, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	times := map[App]map[SystemKind]float64{}
	sums := map[App]map[SystemKind]float64{}
	for _, r := range rows {
		if times[r.App] == nil {
			times[r.App] = map[SystemKind]float64{}
			sums[r.App] = map[SystemKind]float64{}
		}
		times[r.App][r.System] = r.Ms
		sums[r.App][r.System] = r.Checksum
	}
	for app, bysys := range times {
		// Conversion-heavy apps: ST4ML beats both baselines (the headline
		// claim of Fig. 7d–h).
		if bysys[ST4MLB] >= bysys[GeoMesaK] {
			t.Errorf("%s: ST4ML (%.1f ms) not faster than GeoMesa-like (%.1f ms)",
				app, bysys[ST4MLB], bysys[GeoMesaK])
		}
		if bysys[ST4MLB] >= bysys[GeoSpark] {
			t.Errorf("%s: ST4ML (%.1f ms) not faster than GeoSpark-like (%.1f ms)",
				app, bysys[ST4MLB], bysys[GeoSpark])
		}
		// All systems computed the same feature.
		for sys, sum := range sums[app] {
			if !closeEnough(sum, sums[app][ST4MLB]) {
				t.Errorf("%s: %s checksum %.4f != st4ml %.4f",
					app, sys, sum, sums[app][ST4MLB])
			}
		}
	}
}

func TestTable8Shape(t *testing.T) {
	rows, err := Table8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AllApps) {
		t.Fatalf("rows = %d", len(rows))
	}
	var sb, sc, sm, sg int
	for _, r := range rows {
		if r.ST4MLB <= 0 || r.ST4MLC <= 0 || r.GeoMesa <= 0 || r.GeoSpark <= 0 {
			t.Errorf("%s: zero LoC: %+v", r.App, r)
		}
		sb += r.ST4MLB
		sc += r.ST4MLC
		sm += r.GeoMesa
		sg += r.GeoSpark
	}
	// The paper's ordering: ST4ML-B <= ST4ML-C < baselines on average.
	if sb > sc {
		t.Errorf("built-in total (%d) should not exceed custom total (%d)", sb, sc)
	}
	if sm <= sb || sg <= sb {
		t.Errorf("baselines (%d, %d) should need more code than ST4ML-B (%d)", sm, sg, sb)
	}
}

func TestFig9AndTable9Shape(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	city := NewCaseStudyCity()
	rows := Fig9(ctx, city, 2, 300)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var st4mlTotal, gsTotal float64
	for _, r := range rows {
		if !closeEnoughF(r.ST4MLChecksum, r.GeoSparkChecksum) {
			t.Errorf("day %d: checksums differ: %.4f vs %.4f",
				r.Day, r.ST4MLChecksum, r.GeoSparkChecksum)
		}
		st4mlTotal += r.ST4MLMs
		gsTotal += r.GeoSparkMs
	}
	// Compare summed days: per-day timings jitter under load, the total
	// ordering is the claim.
	if st4mlTotal >= gsTotal {
		t.Errorf("ST4ML total (%.1f ms) not faster than GeoSpark-like (%.1f ms)",
			st4mlTotal, gsTotal)
	}

	t9 := Table9(ctx, city, 1, 60)
	if len(t9) != 1 {
		t.Fatalf("table9 rows = %d", len(t9))
	}
	r := t9[0]
	if r.Amount != 60 {
		t.Errorf("amount = %d", r.Amount)
	}
	if r.SegmentsWithFlow == 0 || r.TotalFlow == 0 {
		t.Errorf("no flow extracted: %+v", r)
	}
	// Flow inference covers more segments than raw sightings alone would:
	// connected paths include camera-free segments, so flows exceed raw
	// point count.
	if r.TotalFlow < int64(float64(r.Amount)*r.AvgPoints) {
		t.Errorf("path inference should add flow beyond sightings: flow=%d, sightings~%.0f",
			r.TotalFlow, float64(r.Amount)*r.AvgPoints)
	}
}

func TestReportTables(t *testing.T) {
	// The formatters must not panic and should include headers.
	var sb strings.Builder
	Fig5Table([]Fig5Row{{Dataset: "event", Frac: 0.1, NativeMs: 10, IndexedMs: 5,
		LoadedNative: 100, LoadedIndexed: 50, Selected: 10}}).Fprint(&sb)
	Fig6Table([]Fig6Row{{Dataset: "event", Target: "ts", Granularity: 8,
		NaiveMs: 10, RegularMs: 1, RTreeMs: 2}}).Fprint(&sb)
	Table5Table([]Table5Row{{Partitioner: "X", Dataset: "event", CV: 1, OV: 2}}).Fprint(&sb)
	Table6Table(Table6Result{}).Fprint(&sb)
	Fig7Table([]Fig7Row{{App: AppAnomaly, System: ST4MLB, Ms: 5}}).Fprint(&sb)
	Fig9Table([]Fig9Row{{Day: 0, Trajs: 10, ST4MLMs: 1, GeoSparkMs: 2}}).Fprint(&sb)
	Table9Table([]Table9Row{{Day: 0, Amount: 5}}).Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Fig 5", "Fig 6", "Table 5", "Table 6", "Fig 7", "Fig 9", "Table 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in report output", want)
		}
	}
}
