package bench

import (
	"st4ml/internal/codec"
	"st4ml/internal/convert"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

// The ST4ML implementations of the eight applications. builtin selects the
// Table 3 extractors (ST4ML-B); otherwise the same feature is computed with
// custom logic through the Table 4 APIs (ST4ML-C).

type eventInst = instance.Event[geom.Point, string, int64]
type trajInst = instance.Trajectory[instance.Unit, int64]

func (e *Env) eventSelector() *selection.Selector[stdata.EventRec] {
	return selection.New(e.Ctx, stdata.EventRecC, stdata.EventRec.Box, nil, selection.Config{
		Index:      true,
		Planner:    partition.TSTR{GT: 4, GS: 4},
		SampleFrac: 0.1,
	})
}

func (e *Env) trajSelector() *selection.Selector[stdata.TrajRec] {
	// Box-level refinement matches the baselines' MBR query semantics so
	// cross-system checksums agree.
	return selection.New(e.Ctx, stdata.TrajRecC, stdata.TrajRec.Box, nil, selection.Config{
		Index:      true,
		Planner:    partition.TSTR{GT: 4, GS: 4},
		SampleFrac: 0.1,
	})
}

func runST4ML(env *Env, app App, windows []selection.Window, p appParams, builtin bool) (AppResult, error) {
	switch app {
	case AppAnomaly:
		return st4mlAnomaly(env, windows, p, builtin)
	case AppAvgSpeed:
		return st4mlAvgSpeed(env, windows, builtin)
	case AppStayPoint:
		return st4mlStayPoint(env, windows, p, builtin)
	case AppHourlyFlow:
		return st4mlHourlyFlow(env, windows, p, builtin)
	case AppGridSpeed:
		return st4mlGridSpeed(env, windows, p, builtin)
	case AppTransition:
		return st4mlTransition(env, windows, p, builtin)
	case AppAirRoad:
		return st4mlAirRoad(env, builtin)
	case AppPOICount:
		return st4mlPOICount(env, builtin)
	}
	return AppResult{}, errUnknownApp(app)
}

func st4mlAnomaly(env *Env, windows []selection.Window, p appParams, builtin bool) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		recs, stats, err := env.eventSelector().SelectPruned(env.EventDir, w)
		if err != nil {
			return res, err
		}
		res.Records += stats.SelectedRecords
		events := engine.Map(recs, stdata.EventRec.ToEvent)
		var n int64
		if builtin {
			n = extract.EventAnomaly(events, p.anomalyLo, p.anomalyHi).Count()
		} else {
			n = events.Filter(func(e eventInst) bool {
				h := tempo.HourOfDay(e.Entry.Temporal.Start)
				return h >= p.anomalyLo || h < p.anomalyHi
			}).Count()
		}
		res.Checksum += float64(n)
	}
	return res, nil
}

func st4mlAvgSpeed(env *Env, windows []selection.Window, builtin bool) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		recs, stats, err := env.trajSelector().SelectPruned(env.TrajDir, w)
		if err != nil {
			return res, err
		}
		res.Records += stats.SelectedRecords
		trajs := engine.Map(recs, stdata.TrajRec.ToTrajectory)
		if builtin {
			speeds := extract.TrajSpeed(trajs, extract.KMH)
			sum := engine.Aggregate(speeds, 0.0,
				func(acc float64, p2 codec.Pair[int64, float64]) float64 {
					return acc + round2(p2.Value)
				},
				func(a, b float64) float64 { return a + b })
			res.Checksum += sum
		} else {
			sum := engine.Aggregate(trajs, 0.0,
				func(acc float64, tr trajInst) float64 {
					return acc + round2(tr.AvgSpeedMps()*3.6)
				},
				func(a, b float64) float64 { return a + b })
			res.Checksum += sum
		}
	}
	return res, nil
}

func st4mlStayPoint(env *Env, windows []selection.Window, p appParams, builtin bool) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		recs, stats, err := env.trajSelector().SelectPruned(env.TrajDir, w)
		if err != nil {
			return res, err
		}
		res.Records += stats.SelectedRecords
		trajs := engine.Map(recs, stdata.TrajRec.ToTrajectory)
		var n int64
		if builtin {
			sps := extract.TrajStayPoints(trajs, p.stayDistM, p.stayDurSec)
			n = engine.Aggregate(sps, int64(0),
				func(acc int64, pr codec.Pair[int64, []extract.StayPoint]) int64 {
					return acc + int64(len(pr.Value))
				},
				func(a, b int64) int64 { return a + b })
		} else {
			n = engine.Aggregate(trajs, int64(0),
				func(acc int64, tr trajInst) int64 {
					return acc + int64(len(extract.StayPointsOf(tr.Entries, p.stayDistM, p.stayDurSec)))
				},
				func(a, b int64) int64 { return a + b })
		}
		res.Checksum += float64(n)
	}
	return res, nil
}

func st4mlHourlyFlow(env *Env, windows []selection.Window, p appParams, builtin bool) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		recs, stats, err := env.eventSelector().SelectPruned(env.EventDir, w)
		if err != nil {
			return res, err
		}
		res.Records += stats.SelectedRecords
		events := engine.Map(recs, stdata.EventRec.ToEvent)
		tgt := convert.TimeGridTarget(instance.TimeGrid{Window: w.Time, NT: p.flowNT})
		if builtin {
			cells := convert.EventToTimeSeries(events, tgt, convert.Auto,
				func(in []eventInst) []eventInst { return in })
			ts, ok := extract.TsFlow(cells)
			if ok {
				for i, e := range ts.Entries {
					res.Checksum += float64(int64(i+1) * e.Value)
				}
			}
		} else {
			counts := convert.EventToTimeSeries(events, tgt, convert.Auto,
				func(in []eventInst) int64 { return int64(len(in)) })
			ts, ok := extract.CollectAndMergeTimeSeries(counts,
				func(a, b int64) int64 { return a + b })
			if ok {
				for i, e := range ts.Entries {
					res.Checksum += float64(int64(i+1) * e.Value)
				}
			}
		}
	}
	return res, nil
}

func st4mlGridSpeed(env *Env, windows []selection.Window, p appParams, builtin bool) (AppResult, error) {
	grid := gridSpeedCells(p)
	tgt := convert.SpatialGridTarget(grid)
	var res AppResult
	for _, w := range windows {
		recs, stats, err := env.trajSelector().SelectPruned(env.TrajDir, w)
		if err != nil {
			return res, err
		}
		res.Records += stats.SelectedRecords
		trajs := engine.Map(recs, stdata.TrajRec.ToTrajectory)
		if builtin {
			cells := convert.TrajToSpatialMap(trajs, tgt, convert.Auto,
				func(in []trajInst) []trajInst { return in })
			sm, ok := extract.SmSpeed(cells, extract.KMH)
			if ok {
				for _, e := range sm.Entries {
					res.Checksum += round2(e.Value)
				}
			}
		} else {
			accs := convert.TrajToSpatialMap(trajs, tgt, convert.Auto,
				func(in []trajInst) extract.MeanAcc {
					var a extract.MeanAcc
					for _, tr := range in {
						a = a.Add(tr.AvgSpeedMps())
					}
					return a
				})
			sm, ok := extract.CollectAndMergeSpatialMap(accs, extract.MeanAcc.Merge)
			if ok {
				for _, e := range sm.Entries {
					res.Checksum += round2(e.Value.Mean() * 3.6)
				}
			}
		}
	}
	return res, nil
}

func st4mlTransition(env *Env, windows []selection.Window, p appParams, builtin bool) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		recs, stats, err := env.trajSelector().SelectPruned(env.TrajDir, w)
		if err != nil {
			return res, err
		}
		res.Records += stats.SelectedRecords
		trajs := engine.Map(recs, stdata.TrajRec.ToTrajectory)
		grid := transitionGrid(p, w)
		if builtin {
			ra := extract.RasterTransit(trajs, grid)
			for _, e := range ra.Entries {
				res.Checksum += float64(e.Value.In + e.Value.Out)
			}
		} else {
			per := grid.Space.NumCells()
			flows := engine.Aggregate(trajs, nil,
				func(acc []extract.InOut, tr trajInst) []extract.InOut {
					if acc == nil {
						acc = make([]extract.InOut, grid.NumCells())
					}
					prevCell, prevSlot := -1, -1
					for _, e := range tr.Entries {
						cell := grid.Space.Locate(e.Spatial)
						slot, _, ok := grid.Time.SlotRange(e.Temporal)
						if !ok {
							slot = -1
						}
						if prevCell >= 0 && cell >= 0 && slot >= 0 && cell != prevCell {
							acc[prevSlot*per+prevCell].Out++
							acc[slot*per+cell].In++
						}
						if cell >= 0 && slot >= 0 {
							prevCell, prevSlot = cell, slot
						}
					}
					return acc
				},
				func(a, b []extract.InOut) []extract.InOut {
					if a == nil {
						return b
					}
					if b == nil {
						return a
					}
					for i := range a {
						a[i] = a[i].Merge(b[i])
					}
					return a
				})
			for _, f := range flows {
				res.Checksum += float64(f.In + f.Out)
			}
		}
	}
	return res, nil
}

func st4mlAirRoad(env *Env, builtin bool) (AppResult, error) {
	cells, slots, _ := airSetting(env)
	tgt := convert.RasterCellsTarget(cells, slots)
	events := engine.Map(engine.Parallelize(env.Ctx, env.Air, 0), stdata.AirRec.ToEvent)
	type airEv = instance.Event[geom.Point, [6]float64, int64]
	var res AppResult
	res.Records = int64(len(env.Air))
	if builtin {
		accs := convert.EventToRaster(events, tgt, convert.RTree,
			func(in []airEv) extract.MeanAcc {
				var a extract.MeanAcc
				for _, e := range in {
					a = a.Add(e.Entry.Value[0]) // PM2.5
				}
				return a
			})
		ra, ok := extract.CollectAndMergeRaster(accs, extract.MeanAcc.Merge)
		if ok {
			for _, e := range ra.Entries {
				if e.Value.N > 0 {
					res.Checksum += round2(e.Value.Mean())
				}
			}
		}
	} else {
		raw := convert.EventToRaster(events, tgt, convert.RTree,
			func(in []airEv) []airEv { return in })
		means := extract.MapRasterValue(raw, func(in []airEv) extract.MeanAcc {
			var a extract.MeanAcc
			for _, e := range in {
				a = a.Add(e.Entry.Value[0])
			}
			return a
		})
		ra, ok := extract.CollectAndMergeRaster(means, extract.MeanAcc.Merge)
		if ok {
			for _, e := range ra.Entries {
				if e.Value.N > 0 {
					res.Checksum += round2(e.Value.Mean())
				}
			}
		}
	}
	return res, nil
}

func st4mlPOICount(env *Env, builtin bool) (AppResult, error) {
	polys := make([]*geom.Polygon, len(env.Areas))
	for i, a := range env.Areas {
		polys[i] = a.Shape
	}
	tgt := convert.CellsTarget(polys)
	events := engine.Map(engine.Parallelize(env.Ctx, env.POIs, 0), stdata.POIRec.ToEvent)
	var res AppResult
	res.Records = int64(len(env.POIs))
	if builtin {
		cells := convert.EventToSpatialMap(events, tgt, convert.RTree,
			func(in []eventInst) []eventInst { return in })
		sm, ok := extract.SmFlow(cells)
		if ok {
			for i, e := range sm.Entries {
				res.Checksum += float64(int64(i+1) * e.Value)
			}
		}
	} else {
		counts := convert.EventToSpatialMap(events, tgt, convert.RTree,
			func(in []eventInst) int64 { return int64(len(in)) })
		sm, ok := extract.CollectAndMergeSpatialMap(counts,
			func(a, b int64) int64 { return a + b })
		if ok {
			for i, e := range sm.Entries {
				res.Checksum += float64(int64(i+1) * e.Value)
			}
		}
	}
	return res, nil
}

type unknownAppError App

func errUnknownApp(a App) error         { return unknownAppError(a) }
func (e unknownAppError) Error() string { return "bench: unknown app " + string(e) }
