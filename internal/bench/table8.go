package bench

import (
	"embed"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
)

// Table 8 counts the lines of code of the end-to-end application
// implementations, per system, directly from this package's sources: the
// ST4ML implementations live in apps_st4ml.go (with the built-in and
// custom styles as the two branches of each function's `if builtin`), the
// baseline implementations in apps_geomesa.go and apps_geospark.go. The
// comparison measures real, runnable code — the same functions Fig. 7
// executes.

//go:embed apps_st4ml.go apps_geomesa.go apps_geospark.go
var appSources embed.FS

// Table8Row reports one application's LoC per system.
type Table8Row struct {
	App      App
	ST4MLB   int
	ST4MLC   int
	GeoMesa  int
	GeoSpark int
}

// appFuncNames maps each application to its function name per source file.
var appFuncNames = map[App][3]string{
	AppAnomaly:    {"st4mlAnomaly", "gmAnomaly", "gsAnomaly"},
	AppAvgSpeed:   {"st4mlAvgSpeed", "gmAvgSpeed", "gsAvgSpeed"},
	AppStayPoint:  {"st4mlStayPoint", "gmStayPoint", "gsStayPoint"},
	AppHourlyFlow: {"st4mlHourlyFlow", "gmHourlyFlow", "gsHourlyFlow"},
	AppGridSpeed:  {"st4mlGridSpeed", "gmGridSpeed", "gsGridSpeed"},
	AppTransition: {"st4mlTransition", "gmTransition", "gsTransition"},
	AppAirRoad:    {"st4mlAirRoad", "gmAirRoad", "gsAirRoad"},
	AppPOICount:   {"st4mlPOICount", "gmPOICount", "gsPOICount"},
}

// funcSpan records a function's total line span, the spans of the
// builtin/custom branches of its top-level `if builtin` statement (0 when
// absent), and the names of same-package functions it calls.
type funcSpan struct {
	total, thenLines, elseLines int
	calls                       []string
}

// Table8 parses the embedded sources and reports per-app LoC per system.
// Each application is charged for its function plus every same-package
// helper it (transitively) calls — so the baselines' per-record string
// reformatting helpers count toward the baselines' effort, as they would if
// each application were written standalone (the paper's setting).
func Table8() ([]Table8Row, error) {
	spans := map[string]funcSpan{}
	for _, file := range []string{"apps_st4ml.go", "apps_geomesa.go", "apps_geospark.go"} {
		src, err := appSources.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("bench: read %s: %w", file, err)
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, src, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: parse %s: %w", file, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			span := funcSpan{
				total: fset.Position(fd.End()).Line - fset.Position(fd.Pos()).Line + 1,
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.IfStmt:
					// Find `if builtin { ... } else { ... }` branches.
					if id, ok := node.Cond.(*ast.Ident); ok && id.Name == "builtin" {
						span.thenLines = fset.Position(node.Body.End()).Line -
							fset.Position(node.Body.Pos()).Line + 1
						if node.Else != nil {
							span.elseLines = fset.Position(node.Else.End()).Line -
								fset.Position(node.Else.Pos()).Line + 1
						}
					}
				case *ast.CallExpr:
					if id, ok := node.Fun.(*ast.Ident); ok {
						span.calls = append(span.calls, id.Name)
					}
				}
				return true
			})
			spans[fd.Name.Name] = span
		}
	}

	// helperLines sums the spans of package helpers transitively reachable
	// from fn, excluding app entry points and dispatchers.
	appEntry := map[string]bool{}
	for _, names := range appFuncNames {
		for _, n := range names {
			appEntry[n] = true
		}
	}
	helperLines := func(fn string) int {
		seen := map[string]bool{fn: true}
		queue := append([]string(nil), spans[fn].calls...)
		total := 0
		for len(queue) > 0 {
			name := queue[0]
			queue = queue[1:]
			if seen[name] || appEntry[name] {
				continue
			}
			seen[name] = true
			h, ok := spans[name]
			if !ok {
				continue // library call, not package-local
			}
			total += h.total
			queue = append(queue, h.calls...)
		}
		return total
	}

	var rows []Table8Row
	for _, app := range AllApps {
		names := appFuncNames[app]
		for _, n := range names {
			if _, ok := spans[n]; !ok {
				return nil, fmt.Errorf("bench: function %s not found", n)
			}
		}
		st, gm, gs := spans[names[0]], spans[names[1]], spans[names[2]]
		helpers := helperLines(names[0])
		rows = append(rows, Table8Row{
			App: app,
			// ST4ML-B: the shared function minus the custom branch;
			// ST4ML-C: minus the built-in branch.
			ST4MLB:   st.total - st.elseLines + helpers,
			ST4MLC:   st.total - st.thenLines + helpers,
			GeoMesa:  gm.total + helperLines(names[1]),
			GeoSpark: gs.total + helperLines(names[2]),
		})
	}
	return rows, nil
}

// Table8Table formats the rows with the paper's normalized average.
func Table8Table(rows []Table8Row) *Table {
	t := NewTable("Table 8: lines of code per end-to-end application",
		"app", "st4ml-b", "st4ml-c", "geomesa", "geospark")
	var sb, sc, sm, sg int
	for _, r := range rows {
		t.Add(string(r.App), r.ST4MLB, r.ST4MLC, r.GeoMesa, r.GeoSpark)
		sb += r.ST4MLB
		sc += r.ST4MLC
		sm += r.GeoMesa
		sg += r.GeoSpark
	}
	if sb > 0 {
		t.Add("average(normalized)",
			"100%",
			fmt.Sprintf("%.0f%%", 100*float64(sc)/float64(sb)),
			fmt.Sprintf("%.0f%%", 100*float64(sm)/float64(sb)),
			fmt.Sprintf("%.0f%%", 100*float64(sg)/float64(sb)))
	}
	return t
}
