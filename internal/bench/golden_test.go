package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestWriteJSONRowGolden pins the exact serialized form of a benchmark
// row — field names, key order, number formatting, trailing newline —
// against a checked-in golden file. Downstream tooling appends these lines
// to .jsonl perf logs across commits, so any schema drift must be a
// deliberate, reviewed change (run `go test ./internal/bench -update` to
// accept one).
func TestWriteJSONRowGolden(t *testing.T) {
	row := ServeResult{
		Events:         50000,
		Partitions:     32,
		Clients:        8,
		Queries:        160,
		ColdMeanMS:     12.5,
		ColdP95MS:      40.25,
		ColdQPS:        128,
		HotMeanMS:      0.75,
		HotP95MS:       2.5,
		HotQPS:         4096,
		PartitionLoads: 32,
		ResultHits:     160,
		Shed:           0,
	}
	var buf bytes.Buffer
	if err := WriteJSONRow(&buf, "serve", row); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "serve_row.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("WriteJSONRow output drifted from golden file\n got: %s\nwant: %s",
			buf.Bytes(), want)
	}
}
