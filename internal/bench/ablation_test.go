package bench

import (
	"testing"
)

func TestAblationShuffleShape(t *testing.T) {
	env := smallEnv(t)
	_, _, rShuf, gShuf := AblationShuffle(env.Ctx, 20_000, 16)
	// Map-side combine must shuffle at most keys×partitions records;
	// groupByKey shuffles every record.
	if gShuf != 20_000 {
		t.Errorf("groupByKey shuffled %d, want 20000", gShuf)
	}
	if rShuf >= gShuf/10 {
		t.Errorf("reduceByKey shuffled %d, want far fewer than %d", rShuf, gShuf)
	}
}

func TestAblationSelectorIndexRuns(t *testing.T) {
	env := smallEnv(t)
	idx, scan := AblationSelectorIndex(env, 4)
	if idx <= 0 || scan <= 0 {
		t.Errorf("timings: indexed=%g scan=%g", idx, scan)
	}
}

func TestAblationCompressionShape(t *testing.T) {
	env := smallEnv(t)
	plainMs, gzipMs, plainB, gzipB := AblationCompression(env, t.TempDir())
	if plainMs <= 0 || gzipMs <= 0 {
		t.Fatalf("timings: %g %g", plainMs, gzipMs)
	}
	// Gzip trades CPU for bytes: smaller on disk, slower to read.
	if gzipB >= plainB {
		t.Errorf("gzip %d bytes >= plain %d bytes", gzipB, plainB)
	}
	if gzipMs <= plainMs {
		t.Logf("gzip read unexpectedly fast (%.1f vs %.1f ms) — page-cache artifact, not fatal", gzipMs, plainMs)
	}
}

func TestAblationRTreeBuildShape(t *testing.T) {
	bulk, insert := AblationRTreeBuild(20_000)
	// STR bulk loading is the fast path for throwaway indexes.
	if bulk >= insert {
		t.Errorf("bulk build (%.1f ms) not faster than insertion (%.1f ms)", bulk, insert)
	}
}

func TestAblationTableRenders(t *testing.T) {
	env := smallEnv(t)
	tab := AblationTable(env, t.TempDir())
	if len(tab.Rows) != 4 {
		t.Errorf("ablation rows = %d", len(tab.Rows))
	}
}
