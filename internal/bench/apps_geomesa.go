package bench

import (
	"st4ml/internal/baseline"
	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/selection"
	"st4ml/internal/tempo"
)

// The GeoMesa-like implementations: good on-disk pruning via the Z3 store,
// but String-typed timestamps parsed per operation and Cartesian structure
// allocation with no in-memory optimization — a straightforward extension
// of GeoMesa as the paper evaluates it.

func runGeoMesa(env *Env, app App, windows []selection.Window, p appParams) (AppResult, error) {
	switch app {
	case AppAnomaly:
		return gmAnomaly(env, windows, p)
	case AppAvgSpeed:
		return gmAvgSpeed(env, windows)
	case AppStayPoint:
		return gmStayPoint(env, windows, p)
	case AppHourlyFlow:
		return gmHourlyFlow(env, windows, p)
	case AppGridSpeed:
		return gmGridSpeed(env, windows, p)
	case AppTransition:
		return gmTransition(env, windows, p)
	case AppAirRoad:
		return gmAirRoad(env)
	case AppPOICount:
		return gmPOICount(env)
	}
	return AppResult{}, errUnknownApp(app)
}

func gmAnomaly(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		feats, _ := env.GMEvents.Query(w.Space, w.Time)
		res.Records += feats.Count()
		n := feats.Filter(func(f baseline.Feature) bool {
			t := baseline.ParseTime(f.Attrs["time"]) // string parse per record
			h := tempo.HourOfDay(t)
			return h >= p.anomalyLo || h < p.anomalyHi
		}).Count()
		res.Checksum += float64(n)
	}
	return res, nil
}

func gmAvgSpeed(env *Env, windows []selection.Window) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		feats, _ := env.GMTrajs.Query(w.Space, w.Time)
		res.Records += feats.Count()
		sum := engine.Aggregate(feats, 0.0,
			func(acc float64, f baseline.Feature) float64 {
				return acc + round2(featureSpeedKmh(f))
			},
			func(a, b float64) float64 { return a + b })
		res.Checksum += sum
	}
	return res, nil
}

// featureSpeedMps reformats a trajectory feature (string timestamps) and
// computes its average speed in m/s — the reformation toll of Table 1.
func featureSpeedMps(f baseline.Feature) float64 {
	times := f.Times() // parses every string timestamp
	if len(times) < 2 {
		return 0
	}
	var dist float64
	for i := 1; i < len(f.Shape); i++ {
		dist += geom.HaversineMeters(f.Shape[i-1], f.Shape[i])
	}
	dur := times[len(times)-1] - times[0]
	if dur <= 0 {
		return 0
	}
	return dist / float64(dur)
}

// featureSpeedKmh converts featureSpeedMps to km/h.
func featureSpeedKmh(f baseline.Feature) float64 { return featureSpeedMps(f) * 3.6 }

// featureEntries reformats a feature into (point, time) entries.
func featureEntries(f baseline.Feature) []instance.Entry[geom.Point, instance.Unit] {
	times := f.Times()
	entries := make([]instance.Entry[geom.Point, instance.Unit], len(f.Shape))
	for i := range f.Shape {
		entries[i] = instance.Entry[geom.Point, instance.Unit]{
			Spatial:  f.Shape[i],
			Temporal: tempo.Instant(times[i]),
		}
	}
	return entries
}

func gmStayPoint(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		feats, _ := env.GMTrajs.Query(w.Space, w.Time)
		res.Records += feats.Count()
		n := engine.Aggregate(feats, int64(0),
			func(acc int64, f baseline.Feature) int64 {
				entries := featureEntries(f) // reformat from strings
				return acc + int64(len(extract.StayPointsOf(entries, p.stayDistM, p.stayDurSec)))
			},
			func(a, b int64) int64 { return a + b })
		res.Checksum += float64(n)
	}
	return res, nil
}

func gmHourlyFlow(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		feats, _ := env.GMEvents.Query(w.Space, w.Time)
		res.Records += feats.Count()
		slots := w.Time.Split(p.flowNT)
		// Cartesian slot allocation with a full shuffle: every (event, slot)
		// pair is tested, matches keyed and counted via groupByKey.
		pairs := engine.FlatMap(feats, func(f baseline.Feature) []codec.Pair[int, int64] {
			t := baseline.ParseTime(f.Attrs["time"])
			var out []codec.Pair[int, int64]
			for i, s := range slots {
				if s.Contains(t) {
					out = append(out, codec.KV(i, int64(1)))
				}
			}
			return out
		})
		grouped := engine.GroupByKey(pairs, codec.Int, codec.Int64, 0)
		counts := make([]int64, p.flowNT)
		for _, g := range grouped.Collect() {
			counts[g.Key] = int64(len(g.Value))
		}
		for i, c := range counts {
			res.Checksum += float64(int64(i+1) * c)
		}
	}
	return res, nil
}

func gmGridSpeed(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	grid := gridSpeedCells(p)
	cells := grid.Cells()
	var res AppResult
	for _, w := range windows {
		feats, _ := env.GMTrajs.Query(w.Space, w.Time)
		res.Records += feats.Count()
		// Cartesian cell allocation, then a shuffled aggregation per cell.
		pairs := engine.FlatMap(feats, func(f baseline.Feature) []codec.Pair[int, float64] {
			speed := featureSpeedMps(f)
			var out []codec.Pair[int, float64]
			for ci, cell := range cells {
				if featureCrossesBox(f, cell) {
					out = append(out, codec.KV(ci, speed))
				}
			}
			return out
		})
		grouped := engine.GroupByKey(pairs, codec.Int, codec.Float64, 0)
		sums := make([]extract.MeanAcc, len(cells))
		for _, g := range grouped.Collect() {
			var a extract.MeanAcc
			for _, v := range g.Value {
				a = a.Add(v)
			}
			sums[g.Key] = a
		}
		for _, a := range sums {
			res.Checksum += round2(a.Mean() * 3.6)
		}
	}
	return res, nil
}

// featureCrossesBox tests whether any segment of the feature's shape
// crosses the box (point features test containment).
func featureCrossesBox(f baseline.Feature, b geom.MBR) bool {
	if len(f.Shape) == 1 {
		return b.ContainsPoint(f.Shape[0])
	}
	for i := 1; i < len(f.Shape); i++ {
		if geom.SegmentIntersectsBox(f.Shape[i-1], f.Shape[i], b) {
			return true
		}
	}
	return false
}

func gmTransition(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	var res AppResult
	for _, w := range windows {
		feats, _ := env.GMTrajs.Query(w.Space, w.Time)
		res.Records += feats.Count()
		grid := transitionGrid(p, w)
		per := grid.Space.NumCells()
		flows := engine.Aggregate(feats, nil,
			func(acc []extract.InOut, f baseline.Feature) []extract.InOut {
				if acc == nil {
					acc = make([]extract.InOut, grid.NumCells())
				}
				entries := featureEntries(f) // reformat from strings
				prevCell, prevSlot := -1, -1
				for _, e := range entries {
					cell := grid.Space.Locate(e.Spatial)
					slot, _, ok := grid.Time.SlotRange(e.Temporal)
					if !ok {
						slot = -1
					}
					if prevCell >= 0 && cell >= 0 && slot >= 0 && cell != prevCell {
						acc[prevSlot*per+prevCell].Out++
						acc[slot*per+cell].In++
					}
					if cell >= 0 && slot >= 0 {
						prevCell, prevSlot = cell, slot
					}
				}
				return acc
			},
			mergeInOutSlices)
		for _, fl := range flows {
			res.Checksum += float64(fl.In + fl.Out)
		}
	}
	return res, nil
}

func mergeInOutSlices(a, b []extract.InOut) []extract.InOut {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for i := range a {
		a[i] = a[i].Merge(b[i])
	}
	return a
}

func gmAirRoad(env *Env) (AppResult, error) {
	cells, slots, _ := airSetting(env)
	feats := make([]baseline.Feature, len(env.Air))
	for i, a := range env.Air {
		feats[i] = baseline.FromAirRec(a)
	}
	r := engine.Parallelize(env.Ctx, feats, 0)
	var res AppResult
	res.Records = int64(len(env.Air))
	// Cartesian (record × cell) allocation: no structure index.
	accs := engine.Aggregate(r, nil,
		func(acc []extract.MeanAcc, f baseline.Feature) []extract.MeanAcc {
			if acc == nil {
				acc = make([]extract.MeanAcc, len(cells))
			}
			t := baseline.ParseTime(f.Attrs["time"])
			pm := parseFloatAttr(f, "pm25")
			for ci := range cells {
				if cells[ci].ContainsPoint(f.Shape[0]) && slots[ci].Contains(t) {
					acc[ci] = acc[ci].Add(pm)
				}
			}
			return acc
		},
		mergeMeanSlices)
	for _, a := range accs {
		if a.N > 0 {
			res.Checksum += round2(a.Mean())
		}
	}
	return res, nil
}

func mergeMeanSlices(a, b []extract.MeanAcc) []extract.MeanAcc {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for i := range a {
		a[i] = a[i].Merge(b[i])
	}
	return a
}

func gmPOICount(env *Env) (AppResult, error) {
	feats := make([]baseline.Feature, len(env.POIs))
	for i, p := range env.POIs {
		feats[i] = baseline.FromPOIRec(p)
	}
	r := engine.Parallelize(env.Ctx, feats, 0)
	var res AppResult
	res.Records = int64(len(env.POIs))
	areas := env.Areas
	counts := engine.Aggregate(r, nil,
		func(acc []int64, f baseline.Feature) []int64 {
			if acc == nil {
				acc = make([]int64, len(areas))
			}
			for ai := range areas { // Cartesian: every (poi, area) pair
				if areas[ai].Shape.ContainsPoint(f.Shape[0]) {
					acc[ai]++
				}
			}
			return acc
		},
		func(a, b []int64) []int64 {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			for i := range a {
				a[i] += b[i]
			}
			return a
		})
	for i, c := range counts {
		res.Checksum += float64(int64(i+1) * c)
	}
	return res, nil
}
