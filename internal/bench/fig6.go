package bench

import (
	"fmt"
	"time"

	"st4ml/internal/convert"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/instance"
	"st4ml/internal/stdata"
)

// Fig6Row is one point of Fig. 6: singular→collective conversion time for
// one (dataset, target, granularity) under each allocation method.
type Fig6Row struct {
	Dataset     string
	Target      string // ts | sm | raster
	Granularity int    // NT for ts, x of x×x for sm, y of y×y×y for raster
	NaiveMs     float64
	RegularMs   float64
	RTreeMs     float64
}

// Speedup returns naive/rtree, the paper's headline ratio.
func (r Fig6Row) Speedup() float64 {
	if r.RTreeMs <= 0 {
		return 0
	}
	return r.NaiveMs / r.RTreeMs
}

// Fig6 measures all six singular→collective conversions under the three
// allocation methods across granularities.
func Fig6(env *Env, tsGrans, smGrans, rasterGrans []int) []Fig6Row {
	events := engine.Map(
		engine.Parallelize(env.Ctx, env.Events, 0),
		stdata.EventRec.ToEvent).Cache()
	events.Count()
	trajs := engine.Map(
		engine.Parallelize(env.Ctx, env.Trajs, 0),
		stdata.TrajRec.ToTrajectory).Cache()
	trajs.Count()

	var rows []Fig6Row
	timeIt := func(f func()) float64 {
		t0 := time.Now()
		f()
		return float64(time.Since(t0).Microseconds()) / 1000
	}

	for _, nt := range tsGrans {
		tgt := convert.TimeGridTarget(instance.TimeGrid{Window: datagen.Year2013, NT: nt})
		row := Fig6Row{Dataset: "event", Target: "ts", Granularity: nt}
		for _, m := range []convert.Method{convert.Naive, convert.Regular, convert.RTree} {
			m := m
			ms := timeIt(func() {
				convert.EventToTimeSeries(events, tgt, m, countOf[eventInst]).Count()
			})
			row.set(m, ms)
		}
		rows = append(rows, row)

		rowT := Fig6Row{Dataset: "traj", Target: "ts", Granularity: nt}
		for _, m := range []convert.Method{convert.Naive, convert.Regular, convert.RTree} {
			m := m
			ms := timeIt(func() {
				convert.TrajToTimeSeries(trajs, tgt, m, countOf[trajInst]).Count()
			})
			rowT.set(m, ms)
		}
		rows = append(rows, rowT)
	}
	for _, x := range smGrans {
		evTgt := convert.SpatialGridTarget(instance.SpatialGrid{Extent: datagen.NYCExtent, NX: x, NY: x})
		trTgt := convert.SpatialGridTarget(instance.SpatialGrid{Extent: datagen.PortoExtent, NX: x, NY: x})
		row := Fig6Row{Dataset: "event", Target: "sm", Granularity: x}
		rowT := Fig6Row{Dataset: "traj", Target: "sm", Granularity: x}
		for _, m := range []convert.Method{convert.Naive, convert.Regular, convert.RTree} {
			m := m
			row.set(m, timeIt(func() {
				convert.EventToSpatialMap(events, evTgt, m, countOf[eventInst]).Count()
			}))
			rowT.set(m, timeIt(func() {
				convert.TrajToSpatialMap(trajs, trTgt, m, countOf[trajInst]).Count()
			}))
		}
		rows = append(rows, row, rowT)
	}
	for _, y := range rasterGrans {
		evTgt := convert.RasterGridTarget(instance.RasterGrid{
			Space: instance.SpatialGrid{Extent: datagen.NYCExtent, NX: y, NY: y},
			Time:  instance.TimeGrid{Window: datagen.Year2013, NT: y},
		})
		trTgt := convert.RasterGridTarget(instance.RasterGrid{
			Space: instance.SpatialGrid{Extent: datagen.PortoExtent, NX: y, NY: y},
			Time:  instance.TimeGrid{Window: datagen.Year2013, NT: y},
		})
		row := Fig6Row{Dataset: "event", Target: "raster", Granularity: y}
		rowT := Fig6Row{Dataset: "traj", Target: "raster", Granularity: y}
		for _, m := range []convert.Method{convert.Naive, convert.Regular, convert.RTree} {
			m := m
			row.set(m, timeIt(func() {
				convert.EventToRaster(events, evTgt, m, countOf[eventInst]).Count()
			}))
			rowT.set(m, timeIt(func() {
				convert.TrajToRaster(trajs, trTgt, m, countOf[trajInst]).Count()
			}))
		}
		rows = append(rows, row, rowT)
	}
	return rows
}

func countOf[T any](in []T) int64 { return int64(len(in)) }

func (r *Fig6Row) set(m convert.Method, ms float64) {
	switch m {
	case convert.Naive:
		r.NaiveMs = ms
	case convert.Regular:
		r.RegularMs = ms
	case convert.RTree:
		r.RTreeMs = ms
	}
}

// Fig6Table formats the rows.
func Fig6Table(rows []Fig6Row) *Table {
	t := NewTable("Fig 6: conversion time, naive vs regular vs R-tree",
		"dataset", "target", "gran", "naive_ms", "regular_ms", "rtree_ms", "naive/rtree")
	for _, r := range rows {
		t.Add(r.Dataset, r.Target, fmt.Sprintf("%d", r.Granularity),
			r.NaiveMs, r.RegularMs, r.RTreeMs, r.Speedup())
	}
	return t
}
