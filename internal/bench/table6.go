package bench

import (
	"path/filepath"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/geom"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

// Table6Result reproduces Table 6: T-STR vs 2-d STR on index-facilitated
// data loading and on companion extraction (times in milliseconds).
type Table6Result struct {
	// Selection over on-disk indexes built with each partitioner.
	LoadEventSTR2D, LoadEventTSTR float64
	LoadTrajSTR2D, LoadTrajTSTR   float64
	// End-to-end companion extraction partitioned with each.
	CompEventSTR2D, CompEventTSTR float64
	CompTrajSTR2D, CompTrajTSTR   float64
	// Companion pair counts, for cross-partitioner agreement checks.
	CompEventPairs, CompTrajPairs int
}

// Table6 runs both comparisons at n partitions, with queries random
// selection tasks, and the paper's companion thresholds (1 km, 15 min)
// over one day of data.
func Table6(env *Env, baseDir string, n, queries int) (Table6Result, error) {
	var res Table6Result
	// --- Index construction for data loading ---
	dirs := map[string]partition.Planner{
		"t6-ev-str":  partition.STR2D{N: n},
		"t6-ev-tstr": partition.TSTR{GT: 16, GS: n / 16},
	}
	evRDD := engine.Parallelize(env.Ctx, env.Events, 0)
	trRDD := engine.Parallelize(env.Ctx, env.Trajs, 0)
	for name, planner := range dirs {
		dir := filepath.Join(baseDir, name)
		if _, err := selection.Ingest(evRDD, dir, stdata.EventRecC, stdata.EventRec.Box,
			planner, selection.IngestOptions{Name: name, SampleFrac: 0.05, Seed: 6}); err != nil {
			return res, err
		}
	}
	trDirs := map[string]partition.Planner{
		"t6-tr-str":  partition.STR2D{N: n},
		"t6-tr-tstr": partition.TSTR{GT: 16, GS: n / 16},
	}
	for name, planner := range trDirs {
		dir := filepath.Join(baseDir, name)
		if _, err := selection.Ingest(trRDD, dir, stdata.TrajRecC, stdata.TrajRec.Box,
			planner, selection.IngestOptions{Name: name, SampleFrac: 0.05, Seed: 6}); err != nil {
			return res, err
		}
	}
	evSel := selection.New(env.Ctx, stdata.EventRecC, stdata.EventRec.Box, nil,
		selection.Config{Index: true})
	trSel := selection.New(env.Ctx, stdata.TrajRecC, stdata.TrajRec.Box, nil,
		selection.Config{Index: true})
	// The §4.1 selection shape: broad in space, weekly in time — where
	// temporal partitioning prunes and spatial-only partitioning cannot.
	evWindows := RandomWindowsST(datagen.NYCExtent, datagen.Year2013, 0.5, 0.02, queries, 61)
	trWindows := RandomWindowsST(datagen.PortoExtent, datagen.Year2013, 0.5, 0.02, queries, 62)

	timeSel := func(sel func(dir string, w selection.Window) error, dir string, ws []selection.Window) float64 {
		t0 := time.Now()
		for _, w := range ws {
			if err := sel(dir, w); err != nil {
				panic(err)
			}
		}
		return float64(time.Since(t0).Microseconds()) / 1000
	}
	evRun := func(dir string, w selection.Window) error {
		_, _, err := evSel.SelectPruned(dir, w)
		return err
	}
	trRun := func(dir string, w selection.Window) error {
		_, _, err := trSel.SelectPruned(dir, w)
		return err
	}
	res.LoadEventSTR2D = timeSel(evRun, filepath.Join(baseDir, "t6-ev-str"), evWindows)
	res.LoadEventTSTR = timeSel(evRun, filepath.Join(baseDir, "t6-ev-tstr"), evWindows)
	res.LoadTrajSTR2D = timeSel(trRun, filepath.Join(baseDir, "t6-tr-str"), trWindows)
	res.LoadTrajTSTR = timeSel(trRun, filepath.Join(baseDir, "t6-tr-tstr"), trWindows)

	// --- Companion extraction over one day ---
	day := tempo.New(datagen.Year2013.Start, datagen.Year2013.Start+86400-1)
	dayEvents := evRDD.Filter(func(e stdata.EventRec) bool { return day.Contains(e.Time) }).Cache()
	dayEvents.Count()
	dayTrajs := trRDD.Filter(func(t stdata.TrajRec) bool {
		return t.Box().Temporal().Intersects(day)
	}).Cache()
	dayTrajs.Count()

	const distM, dtSec = 1000.0, 900
	// Duplication buffers: the join thresholds, in degrees and seconds
	// (longitude degrees shrink with latitude, so convert at 45° for a
	// safe overestimate at both corpora's latitudes).
	bufDeg := geom.MetersToDegreesLon(distM, 45)
	idOf := func(d int64) int64 { return d }
	dupOpts := func(seed int64) partition.Options {
		return partition.Options{
			SampleFrac: 0.1, Seed: seed,
			Duplicate: true, BufferSpace: bufDeg, BufferTime: dtSec,
		}
	}

	companionEvents := func(planner partition.Planner) (float64, int) {
		t0 := time.Now()
		parted, _ := partition.ByPlanner(dayEvents, stdata.EventRecC, stdata.EventRec.Box,
			planner, dupOpts(7))
		events := engine.Map(parted, stdata.EventRec.ToEvent)
		pairs := extract.DedupCompanions(extract.EventCompanion(events, distM, dtSec, idOf))
		return float64(time.Since(t0).Microseconds()) / 1000, len(pairs)
	}
	companionTrajs := func(planner partition.Planner) (float64, int) {
		t0 := time.Now()
		parted, _ := partition.ByPlanner(dayTrajs, stdata.TrajRecC, stdata.TrajRec.Box,
			planner, dupOpts(8))
		trajs := engine.Map(parted, stdata.TrajRec.ToTrajectory)
		pairs := extract.DedupCompanions(extract.TrajCompanion(trajs, distM, dtSec, idOf))
		return float64(time.Since(t0).Microseconds()) / 1000, len(pairs)
	}
	var nPairs int
	res.CompEventSTR2D, nPairs = companionEvents(partition.STR2D{N: n})
	res.CompEventTSTR, res.CompEventPairs = companionEvents(partition.TSTR{GT: 16, GS: n / 16})
	if nPairs != res.CompEventPairs {
		// Duplication guarantees completeness; both partitionings must find
		// the same pair set.
		panic("bench: companion pair counts disagree between partitioners")
	}
	res.CompTrajSTR2D, _ = companionTrajs(partition.STR2D{N: n})
	res.CompTrajTSTR, res.CompTrajPairs = companionTrajs(partition.TSTR{GT: 16, GS: n / 16})
	return res, nil
}

// Table6Table formats the result in the paper's layout.
func Table6Table(r Table6Result) *Table {
	t := NewTable("Table 6: T-STR vs 2-d STR (ms)",
		"", "load_event", "load_traj", "companion_event", "companion_traj")
	t.Add("2-d STR", r.LoadEventSTR2D, r.LoadTrajSTR2D, r.CompEventSTR2D, r.CompTrajSTR2D)
	t.Add("T-STR", r.LoadEventTSTR, r.LoadTrajTSTR, r.CompEventTSTR, r.CompTrajTSTR)
	t.Add("speedup",
		ratio(r.LoadEventSTR2D, r.LoadEventTSTR),
		ratio(r.LoadTrajSTR2D, r.LoadTrajTSTR),
		ratio(r.CompEventSTR2D, r.CompEventTSTR),
		ratio(r.CompTrajSTR2D, r.CompTrajTSTR))
	return t
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
