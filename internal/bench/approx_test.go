package bench

import (
	"testing"

	"st4ml/internal/engine"
)

// TestApproxBytesSmoke is the pre-merge acceptance shape for the
// approximate tier (wired into `make check`): on the small-range case the
// sidecar path must read at least 5x fewer bytes than the exact block
// scan, every envelope must contain the exact count, and nothing may fall
// back to a scan on a fully summarized store.
func TestApproxBytesSmoke(t *testing.T) {
	ctx := engine.New(engine.Config{})
	rows, err := Approx(ctx, t.TempDir(), 30_000, 4, []float64{0.01, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Contained {
			t.Errorf("frac %.2f: an envelope missed the exact count: %+v", r.Frac, r)
		}
		if r.Fallbacks != 0 {
			t.Errorf("frac %.2f: %d fallbacks on a summarized store", r.Frac, r.Fallbacks)
		}
		if r.ApproxBytes <= 0 || r.ExactBytes <= 0 {
			t.Errorf("frac %.2f: missing byte accounting: %+v", r.Frac, r)
		}
	}
	small := rows[0]
	if small.BytesRatio < 5 {
		t.Errorf("small range: approx read %d bytes vs exact %d — ratio %.1f, want >= 5x",
			small.ApproxBytes, small.ExactBytes, small.BytesRatio)
	}
}
