package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"st4ml/internal/engine"
)

func TestServeBenchShape(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	res, err := Serve(ctx, t.TempDir(), 5000, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 12 || res.Clients != 4 {
		t.Errorf("result = %+v", res)
	}
	// The hot pass replays the cold mix verbatim: one result hit per query.
	if res.ResultHits != int64(res.Queries) {
		t.Errorf("hot pass hit %d results for %d queries", res.ResultHits, res.Queries)
	}
	// Partition loads happen only in the cold pass and at most once per
	// partition (the cache dedups concurrent loads).
	if res.PartitionLoads <= 0 || res.PartitionLoads > int64(res.Partitions) {
		t.Errorf("partition loads = %d with %d partitions", res.PartitionLoads, res.Partitions)
	}
	if res.Shed != 0 {
		t.Errorf("benchmark shed %d queries", res.Shed)
	}
	if res.ColdQPS <= 0 || res.HotQPS <= 0 {
		t.Errorf("qps not measured: %+v", res)
	}
}

func TestWriteJSONRow(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONRow(&buf, "serve", ServeResult{Queries: 7}); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("not a single line: %q", line)
	}
	var row struct {
		Exp  string      `json:"exp"`
		Data ServeResult `json:"data"`
	}
	if err := json.Unmarshal([]byte(line), &row); err != nil {
		t.Fatal(err)
	}
	if row.Exp != "serve" || row.Data.Queries != 7 {
		t.Errorf("row = %+v", row)
	}
}
