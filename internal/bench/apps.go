package bench

import (
	"fmt"
	"math"

	"st4ml/internal/datagen"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/roadnet"
	"st4ml/internal/selection"
	"st4ml/internal/tempo"
)

// App identifies one of the eight end-to-end applications of Table 7.
type App string

// The eight applications.
const (
	AppAnomaly    App = "anomaly"     // events, no conversion
	AppAvgSpeed   App = "avg-speed"   // trajectories, no conversion
	AppStayPoint  App = "stay-point"  // trajectories, no conversion
	AppHourlyFlow App = "hourly-flow" // Event2Ts
	AppGridSpeed  App = "grid-speed"  // Traj2Sm
	AppTransition App = "transition"  // Traj2Raster
	AppAirRoad    App = "air-road"    // Event2Raster over road network
	AppPOICount   App = "poi-count"   // Event2Sm over postal areas
)

// AllApps lists the applications in Table 7 order.
var AllApps = []App{
	AppAnomaly, AppAvgSpeed, AppStayPoint, AppHourlyFlow,
	AppGridSpeed, AppTransition, AppAirRoad, AppPOICount,
}

// SystemKind identifies an implementation style.
type SystemKind string

// The compared systems.
const (
	ST4MLB   SystemKind = "st4ml-b"  // built-in extractors
	ST4MLC   SystemKind = "st4ml-c"  // custom logic through ST4ML APIs
	GeoMesaK SystemKind = "geomesa"  // GeoMesa-like baseline
	GeoSpark SystemKind = "geospark" // GeoSpark-like baseline
)

// AllSystems lists the compared systems.
var AllSystems = []SystemKind{ST4MLB, ST4MLC, GeoMesaK, GeoSpark}

// AppResult lets tests verify that every system computes the same feature.
type AppResult struct {
	// Checksum is an implementation-independent digest of the extracted
	// feature (counts, flows, rounded speed sums).
	Checksum float64
	// Records is the number of records that entered extraction.
	Records int64
}

// appParams bundles the fixed parameters of Table 7.
type appParams struct {
	anomalyLo, anomalyHi int     // 23:00–04:00
	stayDistM            float64 // 200 m
	stayDurSec           int64   // 10 min
	flowNT               int     // hourly slots over the query span
	gridNX, gridNY       int     // grid-speed cells
	rasterNX, rasterNY   int     // transition cells
	rasterNT             int
}

func defaultParams() appParams {
	return appParams{
		anomalyLo: 23, anomalyHi: 4,
		stayDistM: 200, stayDurSec: 600,
		flowNT: 24,
		gridNX: 20, gridNY: 20,
		rasterNX: 10, rasterNY: 10, rasterNT: 24,
	}
}

// RunApp executes one application on one system over the query windows and
// returns its result digest. The caller times it.
func RunApp(env *Env, app App, sys SystemKind, windows []selection.Window) (AppResult, error) {
	p := defaultParams()
	switch sys {
	case ST4MLB:
		return runST4ML(env, app, windows, p, true)
	case ST4MLC:
		return runST4ML(env, app, windows, p, false)
	case GeoMesaK:
		return runGeoMesa(env, app, windows, p)
	case GeoSpark:
		return runGeoSpark(env, app, windows, p)
	default:
		return AppResult{}, fmt.Errorf("bench: unknown system %q", sys)
	}
}

// WindowsFor builds the app-appropriate query windows at the given range
// fraction.
func WindowsFor(app App, frac float64, n int, seed int64) []selection.Window {
	switch app {
	case AppAnomaly, AppHourlyFlow:
		return RandomWindows(datagen.NYCExtent, datagen.Year2013, frac, n, seed)
	case AppAvgSpeed, AppStayPoint, AppGridSpeed, AppTransition:
		return RandomWindows(datagen.PortoExtent, datagen.Year2013, frac, n, seed)
	default:
		// Air and POI apps operate on their full corpora.
		return nil
	}
}

// airSetting derives the air-over-road structure: a road network around the
// first station and day slots over the corpus week.
func airSetting(env *Env) (cells []geom.MBR, slots []tempo.Duration, window tempo.Duration) {
	origin := env.Air[0].Loc
	g := roadnet.GenerateGrid(10, 10, 500, origin, 0, 6)
	buffer := geom.MetersToDegreesLat(200)
	segBoxes := make([]geom.MBR, 0, g.NumEdges())
	for i := 0; i < g.NumEdges(); i += 2 { // one box per bidirectional pair
		a, b := g.EdgeEndpoints(roadnet.EdgeID(i))
		segBoxes = append(segBoxes, geom.Box(a.X, a.Y, b.X, b.Y).Buffer(buffer))
	}
	window = tempo.New(datagen.Year2013.Start, datagen.Year2013.Start+7*86400-1)
	days := window.Split(7)
	for _, d := range days {
		for _, sb := range segBoxes {
			cells = append(cells, sb)
			slots = append(slots, d)
		}
	}
	return cells, slots, window
}

// gridSpeedCells builds the grid-speed spatial grid over the Porto extent.
func gridSpeedCells(p appParams) instance.SpatialGrid {
	return instance.SpatialGrid{Extent: datagen.PortoExtent, NX: p.gridNX, NY: p.gridNY}
}

// transitionGrid builds the transition raster grid over one query window.
func transitionGrid(p appParams, w selection.Window) instance.RasterGrid {
	return instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: w.Space, NX: p.rasterNX, NY: p.rasterNY},
		Time:  instance.TimeGrid{Window: w.Time, NT: p.rasterNT},
	}
}

// round2 quantizes a float for cross-system checksum stability.
func round2(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return math.Round(v*100) / 100
}
