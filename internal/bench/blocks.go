package bench

import (
	"path/filepath"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
)

// FigBlocksRow is one point of the storage-format comparison: the same
// event corpus and the same seeded windows, stored as legacy v1 monolithic
// partitions versus block-structured v2, both gzip-compressed, queried
// through the metadata-pruned path. At small range fractions v2 should
// decompress measurably fewer bytes (footer bounds skip blocks inside the
// loaded partitions) and finish faster; at full range the two converge.
type FigBlocksRow struct {
	Format            string  `json:"format"` // "v1" | "v2"
	Frac              float64 `json:"frac"`
	WallMs            float64 `json:"wall_ms"`
	Selected          int64   `json:"selected"`
	LoadedBytes       int64   `json:"loaded_bytes"`
	DecompressedBytes int64   `json:"decompressed_bytes"`
	BlocksScanned     int64   `json:"blocks_scanned"`
	BlocksPruned      int64   `json:"blocks_pruned"`
}

// FigBlocks ingests env.Events twice under workdir — once per storage
// format — and measures queriesPerFrac pruned selections at each range
// fraction against both stores. The v1 store is what every pre-block
// release wrote; reading it exercises the legacy path of the same reader.
func FigBlocks(env *Env, workdir string, fracs []float64, queriesPerFrac int) ([]FigBlocksRow, error) {
	type store struct {
		format string
		dir    string
		opts   selection.IngestOptions
	}
	stores := []store{
		{"v1", filepath.Join(workdir, "blocks-v1"), selection.IngestOptions{
			Name: "nyc", Compress: true, SampleFrac: 0.05, Seed: 1, Version: 1}},
		{"v2", filepath.Join(workdir, "blocks-v2"), selection.IngestOptions{
			Name: "nyc", Compress: true, SampleFrac: 0.05, Seed: 1, BlockRecords: 128}},
	}
	for _, s := range stores {
		r := engine.Parallelize(env.Ctx, env.Events, 0)
		if _, err := selection.Ingest(r, s.dir, stdata.EventRecC, stdata.EventRec.Box,
			partition.TSTR{GT: 12, GS: 8}, s.opts); err != nil {
			return nil, err
		}
	}
	sel := selection.New(env.Ctx, stdata.EventRecC, stdata.EventRec.Box, nil,
		selection.Config{Index: true})
	var rows []FigBlocksRow
	for _, frac := range fracs {
		windows := RandomWindows(datagen.NYCExtent, datagen.Year2013, frac,
			queriesPerFrac, int64(frac*1000)+13)
		for _, s := range stores {
			row := FigBlocksRow{Format: s.format, Frac: frac}
			for _, w := range windows {
				t0 := time.Now()
				_, st, err := sel.SelectPruned(s.dir, w)
				if err != nil {
					return nil, err
				}
				row.WallMs += float64(time.Since(t0).Microseconds()) / 1000
				row.Selected += st.SelectedRecords
				row.LoadedBytes += st.LoadedBytes
				row.DecompressedBytes += st.DecompressedBytes
				row.BlocksScanned += st.BlocksScanned
				row.BlocksPruned += st.BlocksPruned
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FigBlocksTable formats the rows.
func FigBlocksTable(rows []FigBlocksRow) *Table {
	t := NewTable("Blocks: storage v1 (monolithic) vs v2 (block-pruned) selection",
		"format", "range", "wall_ms", "selected",
		"mb_loaded", "mb_decompressed", "blk_scan", "blk_prune")
	for _, r := range rows {
		t.Add(r.Format, r.Frac, r.WallMs, r.Selected,
			float64(r.LoadedBytes)/(1<<20), float64(r.DecompressedBytes)/(1<<20),
			r.BlocksScanned, r.BlocksPruned)
	}
	return t
}
