package bench

import (
	"strconv"

	"st4ml/internal/baseline"
	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/selection"
	"st4ml/internal/tempo"
)

// The GeoSpark-like implementations: every application first loads the
// whole dataset into memory and KD-tree partitions it (the ad-hoc ingestion
// the paper charges GeoSpark for), then range-queries per window and runs
// generic shuffling RDD extraction over String-attributed features.

func parseFloatAttr(f baseline.Feature, key string) float64 {
	v, err := strconv.ParseFloat(f.Attrs[key], 64)
	if err != nil {
		return 0
	}
	return v
}

func runGeoSpark(env *Env, app App, windows []selection.Window, p appParams) (AppResult, error) {
	switch app {
	case AppAnomaly:
		return gsAnomaly(env, windows, p)
	case AppAvgSpeed:
		return gsAvgSpeed(env, windows)
	case AppStayPoint:
		return gsStayPoint(env, windows, p)
	case AppHourlyFlow:
		return gsHourlyFlow(env, windows, p)
	case AppGridSpeed:
		return gsGridSpeed(env, windows, p)
	case AppTransition:
		return gsTransition(env, windows, p)
	case AppAirRoad:
		return gsAirRoad(env)
	case AppPOICount:
		return gsPOICount(env)
	}
	return AppResult{}, errUnknownApp(app)
}

// gsLoadEvents performs the per-application full load of the event store.
func gsLoadEvents(env *Env) (*baseline.GeoSpark, error) {
	gs := baseline.NewGeoSpark(env.Ctx)
	if err := gs.Load(env.GSEventDir, 2*env.Ctx.Slots()); err != nil {
		return nil, err
	}
	return gs, nil
}

// gsLoadTrajs performs the per-application full load of the trajectory
// store.
func gsLoadTrajs(env *Env) (*baseline.GeoSpark, error) {
	gs := baseline.NewGeoSpark(env.Ctx)
	if err := gs.Load(env.GSTrajDir, 2*env.Ctx.Slots()); err != nil {
		return nil, err
	}
	return gs, nil
}

func gsAnomaly(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	gs, err := gsLoadEvents(env)
	if err != nil {
		return AppResult{}, err
	}
	var res AppResult
	for _, w := range windows {
		feats := gs.RangeQuery(w.Space, w.Time)
		res.Records += feats.Count()
		n := feats.Filter(func(f baseline.Feature) bool {
			t := baseline.ParseTime(f.Attrs["time"])
			h := tempo.HourOfDay(t)
			return h >= p.anomalyLo || h < p.anomalyHi
		}).Count()
		res.Checksum += float64(n)
	}
	return res, nil
}

func gsAvgSpeed(env *Env, windows []selection.Window) (AppResult, error) {
	gs, err := gsLoadTrajs(env)
	if err != nil {
		return AppResult{}, err
	}
	var res AppResult
	for _, w := range windows {
		feats := gs.RangeQuery(w.Space, w.Time)
		res.Records += feats.Count()
		sum := engine.Aggregate(feats, 0.0,
			func(acc float64, f baseline.Feature) float64 {
				return acc + round2(featureSpeedKmh(f))
			},
			func(a, b float64) float64 { return a + b })
		res.Checksum += sum
	}
	return res, nil
}

func gsStayPoint(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	gs, err := gsLoadTrajs(env)
	if err != nil {
		return AppResult{}, err
	}
	var res AppResult
	for _, w := range windows {
		feats := gs.RangeQuery(w.Space, w.Time)
		res.Records += feats.Count()
		n := engine.Aggregate(feats, int64(0),
			func(acc int64, f baseline.Feature) int64 {
				entries := featureEntries(f)
				return acc + int64(len(extract.StayPointsOf(entries, p.stayDistM, p.stayDurSec)))
			},
			func(a, b int64) int64 { return a + b })
		res.Checksum += float64(n)
	}
	return res, nil
}

func gsHourlyFlow(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	gs, err := gsLoadEvents(env)
	if err != nil {
		return AppResult{}, err
	}
	var res AppResult
	for _, w := range windows {
		feats := gs.RangeQuery(w.Space, w.Time)
		res.Records += feats.Count()
		slots := w.Time.Split(p.flowNT)
		pairs := engine.FlatMap(feats, func(f baseline.Feature) []codec.Pair[int, int64] {
			t := baseline.ParseTime(f.Attrs["time"])
			var out []codec.Pair[int, int64]
			for i, s := range slots {
				if s.Contains(t) {
					out = append(out, codec.KV(i, int64(1)))
				}
			}
			return out
		})
		grouped := engine.GroupByKey(pairs, codec.Int, codec.Int64, 0)
		counts := make([]int64, p.flowNT)
		for _, g := range grouped.Collect() {
			counts[g.Key] = int64(len(g.Value))
		}
		for i, c := range counts {
			res.Checksum += float64(int64(i+1) * c)
		}
	}
	return res, nil
}

func gsGridSpeed(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	gs, err := gsLoadTrajs(env)
	if err != nil {
		return AppResult{}, err
	}
	grid := gridSpeedCells(p)
	cells := grid.Cells()
	var res AppResult
	for _, w := range windows {
		feats := gs.RangeQuery(w.Space, w.Time)
		res.Records += feats.Count()
		pairs := engine.FlatMap(feats, func(f baseline.Feature) []codec.Pair[int, float64] {
			speed := featureSpeedMps(f)
			var out []codec.Pair[int, float64]
			for ci, cell := range cells {
				if featureCrossesBox(f, cell) {
					out = append(out, codec.KV(ci, speed))
				}
			}
			return out
		})
		grouped := engine.GroupByKey(pairs, codec.Int, codec.Float64, 0)
		sums := make([]extract.MeanAcc, len(cells))
		for _, g := range grouped.Collect() {
			var a extract.MeanAcc
			for _, v := range g.Value {
				a = a.Add(v)
			}
			sums[g.Key] = a
		}
		for _, a := range sums {
			res.Checksum += round2(a.Mean() * 3.6)
		}
	}
	return res, nil
}

func gsTransition(env *Env, windows []selection.Window, p appParams) (AppResult, error) {
	gs, err := gsLoadTrajs(env)
	if err != nil {
		return AppResult{}, err
	}
	var res AppResult
	for _, w := range windows {
		feats := gs.RangeQuery(w.Space, w.Time)
		res.Records += feats.Count()
		grid := transitionGrid(p, w)
		per := grid.Space.NumCells()
		flows := engine.Aggregate(feats, nil,
			func(acc []extract.InOut, f baseline.Feature) []extract.InOut {
				if acc == nil {
					acc = make([]extract.InOut, grid.NumCells())
				}
				entries := featureEntries(f)
				prevCell, prevSlot := -1, -1
				for _, e := range entries {
					cell := grid.Space.Locate(e.Spatial)
					slot, _, ok := grid.Time.SlotRange(e.Temporal)
					if !ok {
						slot = -1
					}
					if prevCell >= 0 && cell >= 0 && slot >= 0 && cell != prevCell {
						acc[prevSlot*per+prevCell].Out++
						acc[slot*per+cell].In++
					}
					if cell >= 0 && slot >= 0 {
						prevCell, prevSlot = cell, slot
					}
				}
				return acc
			},
			mergeInOutSlices)
		for _, fl := range flows {
			res.Checksum += float64(fl.In + fl.Out)
		}
	}
	return res, nil
}

func gsAirRoad(env *Env) (AppResult, error) {
	// Ad-hoc in-memory ingestion of the air corpus, then the same
	// unoptimized Cartesian allocation as the GeoMesa extension.
	cells, slots, _ := airSetting(env)
	feats := make([]baseline.Feature, len(env.Air))
	for i, a := range env.Air {
		feats[i] = baseline.FromAirRec(a)
	}
	r := engine.Parallelize(env.Ctx, feats, 0).Cache()
	r.Count()
	var res AppResult
	res.Records = int64(len(env.Air))
	accs := engine.Aggregate(r, nil,
		func(acc []extract.MeanAcc, f baseline.Feature) []extract.MeanAcc {
			if acc == nil {
				acc = make([]extract.MeanAcc, len(cells))
			}
			t := baseline.ParseTime(f.Attrs["time"])
			pm := parseFloatAttr(f, "pm25")
			for ci := range cells {
				if cells[ci].ContainsPoint(f.Shape[0]) && slots[ci].Contains(t) {
					acc[ci] = acc[ci].Add(pm)
				}
			}
			return acc
		},
		mergeMeanSlices)
	for _, a := range accs {
		if a.N > 0 {
			res.Checksum += round2(a.Mean())
		}
	}
	return res, nil
}

func gsPOICount(env *Env) (AppResult, error) {
	feats := make([]baseline.Feature, len(env.POIs))
	for i, p := range env.POIs {
		feats[i] = baseline.FromPOIRec(p)
	}
	r := engine.Parallelize(env.Ctx, feats, 0).Cache()
	r.Count()
	var res AppResult
	res.Records = int64(len(env.POIs))
	areas := env.Areas
	counts := engine.Aggregate(r, nil,
		func(acc []int64, f baseline.Feature) []int64 {
			if acc == nil {
				acc = make([]int64, len(areas))
			}
			for ai := range areas {
				if areas[ai].Shape.ContainsPoint(f.Shape[0]) {
					acc[ai]++
				}
			}
			return acc
		},
		func(a, b []int64) []int64 {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			for i := range a {
				a[i] += b[i]
			}
			return a
		})
	for i, c := range counts {
		res.Checksum += float64(int64(i+1) * c)
	}
	return res, nil
}
