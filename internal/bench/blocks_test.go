package bench

import (
	"strings"
	"testing"
)

// TestFigBlocksShape is the bench-regression gate for the v2 storage
// format's headline claim: at small query ranges, block-level pruning
// decompresses measurably less data than the monolithic v1 layout on the
// same corpus and windows, without changing any answer.
func TestFigBlocksShape(t *testing.T) {
	env := smallEnv(t)
	rows, err := FigBlocks(env, t.TempDir(), []float64{0.05, 0.4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]FigBlocksRow{}
	for _, r := range rows {
		byKey[r.Format+"@"+floatKey(r.Frac)] = r
	}
	for _, frac := range []string{"0.05", "0.40"} {
		v1, v2 := byKey["v1@"+frac], byKey["v2@"+frac]
		// Identical answers on both formats.
		if v1.Selected != v2.Selected {
			t.Errorf("frac %s: v1 selected %d, v2 selected %d", frac, v1.Selected, v2.Selected)
		}
		// v1 has no block structure to prune.
		if v1.BlocksPruned != 0 {
			t.Errorf("frac %s: v1 pruned %d blocks", frac, v1.BlocksPruned)
		}
		// v2 never decompresses more than v1 (same loaded partitions, some
		// blocks skipped).
		if v2.DecompressedBytes > v1.DecompressedBytes {
			t.Errorf("frac %s: v2 decompressed %d > v1 %d",
				frac, v2.DecompressedBytes, v1.DecompressedBytes)
		}
	}
	// The headline claim: at the small range, v2 prunes blocks and
	// decompresses measurably less.
	v1s, v2s := byKey["v1@0.05"], byKey["v2@0.05"]
	if v2s.BlocksPruned == 0 {
		t.Error("small-range v2 selection pruned no blocks")
	}
	if v2s.DecompressedBytes >= v1s.DecompressedBytes {
		t.Errorf("small-range v2 decompressed %d bytes, v1 %d — no saving",
			v2s.DecompressedBytes, v1s.DecompressedBytes)
	}

	var sb strings.Builder
	FigBlocksTable(rows).Fprint(&sb)
	if !strings.Contains(sb.String(), "Blocks:") {
		t.Error("table title missing")
	}
}

func floatKey(f float64) string {
	if f == 0.05 {
		return "0.05"
	}
	return "0.40"
}
