package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// FigCompactRow is one point of the delta-layer experiment: the same event
// corpus queried through three physical states of the same logical store —
// rebuilt in one ingest ("rebuild"), half-ingested with the other half
// streamed in as delta files ("deltas"), and after the compactor folded
// those deltas back into the base ("compacted"). Selected counts must
// match across the three (merge-on-read is exact); the delta columns show
// the read amplification deltas cost and compaction removes.
type FigCompactRow struct {
	Stage         string  `json:"stage"` // "rebuild" | "deltas" | "compacted"
	Frac          float64 `json:"frac"`
	WallMs        float64 `json:"wall_ms"`
	Selected      int64   `json:"selected"`
	DeltasRead    int64   `json:"deltas_read"`
	DeltaRecords  int64   `json:"delta_records"`
	BlocksScanned int64   `json:"blocks_scanned"`
	BlocksPruned  int64   `json:"blocks_pruned"`
}

// CompactSummary reports the write side of the experiment: streaming
// append throughput and the one compaction pass that re-established the
// rebuilt layout.
type CompactSummary struct {
	AppendBatches       int     `json:"append_batches"`
	AppendRecords       int64   `json:"append_records"`
	AppendWallMs        float64 `json:"append_wall_ms"`
	CompactWallMs       float64 `json:"compact_wall_ms"`
	PartitionsCompacted int     `json:"partitions_compacted"`
	DeltasMerged        int     `json:"deltas_merged"`
	FilesRemoved        int     `json:"files_removed"`
	Generation          int64   `json:"generation"`
}

// CompactExp builds two stores under workdir — a full one-shot ingest and
// a half ingest that receives the other half through AppendDelta batches —
// measures pruned selections against rebuild/deltas/compacted states, and
// verifies the three agree on every window.
func CompactExp(env *Env, workdir string, fracs []float64, queriesPerFrac int, batches int) ([]FigCompactRow, CompactSummary, error) {
	if batches <= 0 {
		batches = 8
	}
	sum := CompactSummary{}
	opts := selection.IngestOptions{Name: "nyc", Compress: true, SampleFrac: 0.05, Seed: 1, BlockRecords: 128}
	planner := partition.TSTR{GT: 12, GS: 8}

	rebuildDir := filepath.Join(workdir, "compact-rebuild")
	r := engine.Parallelize(env.Ctx, env.Events, 0)
	if _, err := selection.Ingest(r, rebuildDir, stdata.EventRecC, stdata.EventRec.Box, planner, opts); err != nil {
		return nil, sum, err
	}

	deltaDir := filepath.Join(workdir, "compact-delta")
	half := len(env.Events) / 2
	r = engine.Parallelize(env.Ctx, env.Events[:half], 0)
	if _, err := selection.Ingest(r, deltaDir, stdata.EventRecC, stdata.EventRec.Box, planner, opts); err != nil {
		return nil, sum, err
	}
	rest := env.Events[half:]
	per := (len(rest) + batches - 1) / batches
	t0 := time.Now()
	for b := 0; b < batches && b*per < len(rest); b++ {
		lo, hi := b*per, (b+1)*per
		if hi > len(rest) {
			hi = len(rest)
		}
		_, err := storage.AppendDelta(deltaDir, stdata.EventRecC, rest[lo:hi], stdata.EventRec.Box,
			storage.AppendOptions{BatchID: fmt.Sprintf("bench-%d", b)})
		if err != nil {
			return nil, sum, err
		}
		sum.AppendBatches++
		sum.AppendRecords += int64(hi - lo)
	}
	sum.AppendWallMs = float64(time.Since(t0).Microseconds()) / 1000

	sel := selection.New(env.Ctx, stdata.EventRecC, stdata.EventRec.Box, nil,
		selection.Config{Index: true})
	measure := func(stage, dir string, frac float64, windows []selection.Window) (FigCompactRow, error) {
		row := FigCompactRow{Stage: stage, Frac: frac}
		for _, w := range windows {
			q0 := time.Now()
			_, st, err := sel.SelectPruned(dir, w)
			if err != nil {
				return row, err
			}
			row.WallMs += float64(time.Since(q0).Microseconds()) / 1000
			row.Selected += st.SelectedRecords
			row.DeltasRead += st.DeltasRead
			row.DeltaRecords += st.DeltaRecords
			row.BlocksScanned += st.BlocksScanned
			row.BlocksPruned += st.BlocksPruned
		}
		return row, nil
	}

	var rows []FigCompactRow
	// Stage 1+2: rebuild vs base+deltas, same windows, counts must agree.
	for _, frac := range fracs {
		windows := RandomWindows(datagen.NYCExtent, datagen.Year2013, frac,
			queriesPerFrac, int64(frac*1000)+29)
		rb, err := measure("rebuild", rebuildDir, frac, windows)
		if err != nil {
			return nil, sum, err
		}
		dl, err := measure("deltas", deltaDir, frac, windows)
		if err != nil {
			return nil, sum, err
		}
		if rb.Selected != dl.Selected {
			return nil, sum, fmt.Errorf("bench: compact: frac %v: deltas selected %d, rebuild %d",
				frac, dl.Selected, rb.Selected)
		}
		rows = append(rows, rb, dl)
	}

	// Compact everything and re-measure: delta reads must drop to zero.
	t0 = time.Now()
	cst, err := storage.Compact(deltaDir, stdata.EventRecC, stdata.EventRec.Box,
		storage.CompactOptions{MinDeltas: 1, GCGrace: 0})
	if err != nil {
		return nil, sum, err
	}
	sum.CompactWallMs = float64(time.Since(t0).Microseconds()) / 1000
	sum.PartitionsCompacted = cst.PartitionsCompacted
	sum.DeltasMerged = cst.DeltasMerged
	sum.FilesRemoved = cst.FilesRemoved
	sum.Generation = cst.Generation
	for _, frac := range fracs {
		windows := RandomWindows(datagen.NYCExtent, datagen.Year2013, frac,
			queriesPerFrac, int64(frac*1000)+29)
		cp, err := measure("compacted", deltaDir, frac, windows)
		if err != nil {
			return nil, sum, err
		}
		var want int64
		for _, r := range rows {
			if r.Stage == "rebuild" && r.Frac == frac {
				want = r.Selected
			}
		}
		if cp.Selected != want {
			return nil, sum, fmt.Errorf("bench: compact: frac %v: compacted selected %d, rebuild %d",
				frac, cp.Selected, want)
		}
		rows = append(rows, cp)
	}
	return rows, sum, nil
}

// FigCompactTable formats the query-side rows.
func FigCompactTable(rows []FigCompactRow) *Table {
	t := NewTable("Compact: rebuild vs base+deltas vs compacted selection",
		"stage", "range", "wall_ms", "selected",
		"deltas_read", "delta_records", "blk_scan", "blk_prune")
	for _, r := range rows {
		t.Add(r.Stage, r.Frac, r.WallMs, r.Selected,
			r.DeltasRead, r.DeltaRecords, r.BlocksScanned, r.BlocksPruned)
	}
	return t
}

// CompactSummaryTable formats the write-side summary.
func CompactSummaryTable(s CompactSummary) *Table {
	t := NewTable("Compact: streaming append + one compaction pass",
		"batches", "records", "append_ms", "compact_ms",
		"parts", "deltas", "gc_files", "gen")
	t.Add(s.AppendBatches, s.AppendRecords, s.AppendWallMs, s.CompactWallMs,
		s.PartitionsCompacted, s.DeltasMerged, s.FilesRemoved, s.Generation)
	return t
}
