package bench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"

	"st4ml/internal/cluster"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
)

// ClusterResult is one multi-node serving row: the same uncached window mix
// issued against either a single stserved daemon (mode "single") or an
// strouter fronting N shard daemons (mode "router"). Result caches are
// bypassed on every query so the rows compare scatter/gather overhead and
// fan-out parallelism, not cache amortization (the serve experiment covers
// that).
type ClusterResult struct {
	Mode       string  `json:"mode"` // "single" or "router"
	Shards     int     `json:"shards"`
	Events     int     `json:"events"`
	Partitions int     `json:"partitions"`
	Clients    int     `json:"clients"`
	Queries    int     `json:"queries"`
	MeanMS     float64 `json:"mean_ms"`
	P95MS      float64 `json:"p95_ms"`
	QPS        float64 `json:"qps"`
	// MeanWidth is the mean shard fan-out per routed query; pruning keeps it
	// below Shards for selective windows. Zero in single mode.
	MeanWidth float64 `json:"mean_width"`
	RPCs      int64   `json:"rpcs"`
	Hedges    int64   `json:"hedges"`
	Failovers int64   `json:"failovers"`
}

// Cluster benchmarks routed serving against the single-node baseline: one
// ingested NYC-like store, one seeded window mix, then a latency pass against
// a lone daemon followed by passes against a router over 2 and 4 shard
// daemons. Every fleet serves the same store in-process, so the comparison
// isolates the router's plan/scatter/merge path.
func Cluster(ctx *engine.Context, workdir string, events, clients, windowsPerClient int) ([]ClusterResult, error) {
	sch, ok := stdata.Lookup("nyc")
	if !ok {
		return nil, fmt.Errorf("bench: nyc schema not registered")
	}
	dir := filepath.Join(workdir, "cluster-nyc")
	meta, err := sch.Ingest(ctx, datagen.NYC(events, 17), dir, sch.DefaultPlanner(8, 4),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.05, Seed: 17})
	if err != nil {
		return nil, err
	}

	total := clients * windowsPerClient
	windows := RandomWindows(datagen.NYCExtent, datagen.Year2013, 0.15, total, 17)
	bodies := make([][]byte, total)
	for i, w := range windows {
		bodies[i], err = json.Marshal(serve.QueryRequest{
			Dataset: "nyc",
			MinX:    w.Space.MinX, MinY: w.Space.MinY,
			MaxX: w.Space.MaxX, MaxY: w.Space.MaxY,
			TStart: w.Time.Start, TEnd: w.Time.End,
			NoCache: true,
		})
		if err != nil {
			return nil, err
		}
	}

	base := ClusterResult{
		Events:     events,
		Partitions: meta.NumPartitions(),
		Clients:    clients,
		Queries:    total,
	}

	var rows []ClusterResult

	// Baseline: the window mix straight at one daemon, no router in the path.
	single, urls, err := startShards(ctx, dir, 1, clients)
	if err != nil {
		return nil, err
	}
	row := base
	row.Mode, row.Shards = "single", 1
	var shed int64
	row.MeanMS, row.P95MS, row.QPS, err = servePass(urls[0], bodies, clients, &shed)
	closeAll(single)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	for _, shards := range []int{2, 4} {
		fleet, urls, err := startShards(ctx, dir, shards, clients)
		if err != nil {
			return nil, err
		}
		row, err := routedPass(base, dir, urls, bodies, clients)
		closeAll(fleet)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// startShards brings up n shard daemons over the same store and engine
// context, returning the test servers and their URLs.
func startShards(ctx *engine.Context, dir string, n, clients int) ([]*httptest.Server, []string, error) {
	var fleet []*httptest.Server
	var urls []string
	for i := 0; i < n; i++ {
		srv := serve.NewServer(serve.Config{
			Ctx:         ctx,
			ShardName:   fmt.Sprintf("s%d", i),
			MaxInFlight: 2 * clients,
			MaxQueue:    2 * clients,
		})
		if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
			closeAll(fleet)
			return nil, nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		fleet = append(fleet, ts)
		urls = append(urls, ts.URL)
	}
	return fleet, urls, nil
}

func closeAll(fleet []*httptest.Server) {
	for _, ts := range fleet {
		ts.Close()
	}
}

// routedPass runs the window mix through a fresh router over the given shard
// fleet and folds the router's own counters into the row.
func routedPass(base ClusterResult, dir string, shardURLs []string, bodies [][]byte, clients int) (ClusterResult, error) {
	row := base
	row.Mode, row.Shards = "router", len(shardURLs)

	topo := ""
	for i, u := range shardURLs {
		if i > 0 {
			topo += ";"
		}
		topo += u
	}
	m, err := cluster.ParseShards(topo)
	if err != nil {
		return row, err
	}
	r, err := cluster.NewRouter(cluster.Config{Shards: m})
	if err != nil {
		return row, err
	}
	if err := r.AddDataset("nyc", "nyc", dir); err != nil {
		return row, err
	}
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	var shed int64
	row.MeanMS, row.P95MS, row.QPS, err = servePass(ts.URL, bodies, clients, &shed)
	if err != nil {
		return row, err
	}

	var metrics cluster.MetricsResponse
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return row, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		return row, err
	}
	rs := metrics.Router
	row.RPCs, row.Hedges, row.Failovers = rs.RPCs, rs.Hedges, rs.Failovers
	if rs.Queries > 0 {
		row.MeanWidth = float64(rs.ScatterWidth) / float64(rs.Queries)
	}
	return row, nil
}

// ClusterTable formats the routed-serving comparison rows.
func ClusterTable(rows []ClusterResult) *Table {
	t := NewTable("Cluster: single daemon vs routed shard fleets (uncached mix)",
		"mode", "shards", "events", "parts", "clients", "queries",
		"mean_ms", "p95_ms", "qps", "width", "rpcs", "hedges", "failovers")
	for _, r := range rows {
		t.Add(r.Mode, r.Shards, r.Events, r.Partitions, r.Clients, r.Queries,
			r.MeanMS, r.P95MS, r.QPS, r.MeanWidth, r.RPCs, r.Hedges, r.Failovers)
	}
	return t
}
