package bench

import (
	"time"

	"st4ml/internal/baseline"
	"st4ml/internal/codec"
	"st4ml/internal/convert"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/roadnet"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

// Fig. 9 / case study 1: daily city-wide traffic speed extraction over a
// raster of (district, one-hour) cells, ST4ML vs the GeoSpark-like
// pipeline, per day with varying data volume.

// Fig9Row is one day of the case study.
type Fig9Row struct {
	Day        int
	Trajs      int
	ST4MLMs    float64
	GeoSparkMs float64
	// Checksums verify both systems extract the same speeds.
	ST4MLChecksum    float64
	GeoSparkChecksum float64
}

// CaseStudyCity is the synthetic Hangzhou-like setting shared by Fig. 9 and
// Table 9: a road network and 100 polygonal districts over it.
type CaseStudyCity struct {
	Graph     *roadnet.Graph
	Districts []*geom.Polygon
}

// NewCaseStudyCity builds the deterministic city.
func NewCaseStudyCity() *CaseStudyCity {
	g := roadnet.GenerateGrid(16, 16, 500, geom.Pt(120.05, 30.20), 0.05, 17)
	ext := g.Extent()
	grid := instance.SpatialGrid{Extent: ext, NX: 10, NY: 10}
	cells := grid.Cells()
	districts := make([]*geom.Polygon, len(cells))
	for i, c := range cells {
		districts[i] = c.ToPolygon()
	}
	return &CaseStudyCity{Graph: g, Districts: districts}
}

// Fig9 runs the daily speed extraction for the given days; trajsBase
// scales the per-day volume (day d carries trajsBase + d*trajsBase/4
// trajectories, so volume grows through the period as in the paper's
// month).
func Fig9(ctx *engine.Context, city *CaseStudyCity, days, trajsBase int) []Fig9Row {
	rows := make([]Fig9Row, 0, days)
	for day := 0; day < days; day++ {
		n := trajsBase + day*trajsBase/4
		trajs := datagen.Camera(city.Graph, n, day, 23)
		window := tempo.New(
			datagen.Year2013.Start+int64(day)*86400,
			datagen.Year2013.Start+int64(day+1)*86400-1)
		row := Fig9Row{Day: day, Trajs: n}

		// ST4ML: Traj2Raster (districts × 1 h) with the broadcast R-tree,
		// then the built-in raster speed extractor.
		t0 := time.Now()
		row.ST4MLChecksum = fig9ST4ML(ctx, city, trajs, window)
		row.ST4MLMs = msSince(t0)

		// GeoSpark-like: features with string timestamps, ad-hoc in-memory
		// ingestion, Cartesian district allocation, shuffled aggregation.
		t0 = time.Now()
		row.GeoSparkChecksum = fig9GeoSpark(ctx, city, trajs, window)
		row.GeoSparkMs = msSince(t0)
		rows = append(rows, row)
	}
	return rows
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}

// fig9Cells builds the (district, hour) raster target.
func fig9Cells(city *CaseStudyCity, window tempo.Duration) ([]*geom.Polygon, []tempo.Duration) {
	hours := window.Split(24)
	var cells []*geom.Polygon
	var slots []tempo.Duration
	for _, h := range hours {
		for _, d := range city.Districts {
			cells = append(cells, d)
			slots = append(slots, h)
		}
	}
	return cells, slots
}

func fig9ST4ML(ctx *engine.Context, city *CaseStudyCity, trajs []stdata.TrajRec, window tempo.Duration) float64 {
	cells, slots := fig9Cells(city, window)
	tgt := convert.RasterCellsTarget(cells, slots)
	r := engine.Map(engine.Parallelize(ctx, trajs, 0), stdata.TrajRec.ToTrajectory)
	raster := convert.TrajToRaster(r, tgt, convert.RTree,
		func(in []trajInst) []trajInst { return in })
	speeds, ok := extract.RasterSpeed(raster, extract.KMH)
	if !ok {
		return 0
	}
	var sum float64
	for _, e := range speeds.Entries {
		if e.Value.Count > 0 {
			sum += float64(e.Value.Count) + round2(e.Value.Mean)
		}
	}
	return sum
}

func fig9GeoSpark(ctx *engine.Context, city *CaseStudyCity, trajs []stdata.TrajRec, window tempo.Duration) float64 {
	feats := make([]baseline.Feature, len(trajs))
	for i, tr := range trajs {
		feats[i] = baseline.FromTrajRec(tr)
	}
	loaded := engine.Parallelize(ctx, feats, 0).Cache()
	loaded.Count() // ad-hoc ingestion
	cells, slots := fig9Cells(city, window)
	// Cartesian (trajectory × cell) allocation with a shuffled per-cell
	// aggregation.
	pairs := engine.FlatMap(loaded, func(f baseline.Feature) []codec.Pair[int, float64] {
		entries := featureEntries(f) // parse string timestamps
		speed := featureSpeedMps(f)
		var out []codec.Pair[int, float64]
		for ci := range cells {
			if featureHitsDistrict(entries, cells[ci], slots[ci]) {
				out = append(out, codec.KV(ci, speed))
			}
		}
		return out
	})
	grouped := engine.GroupByKey(pairs, codec.Int, codec.Float64, 0)
	var sum float64
	for _, g := range grouped.Collect() {
		var a extract.MeanAcc
		for _, v := range g.Value {
			a = a.Add(v)
		}
		sum += float64(a.N) + round2(a.Mean()*3.6)
	}
	return sum
}

// featureHitsDistrict mirrors ST4ML's trajIntersectsCell semantics on the
// reformatted entries: any segment overlapping the slot and crossing the
// district polygon.
func featureHitsDistrict(entries []instance.Entry[geom.Point, instance.Unit], cell *geom.Polygon, slot tempo.Duration) bool {
	if len(entries) == 1 {
		return slot.Intersects(entries[0].Temporal) && cell.ContainsPoint(entries[0].Spatial)
	}
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if !slot.Intersects(a.Temporal.Union(b.Temporal)) {
			continue
		}
		if cell.IntersectsSegment(a.Spatial, b.Spatial) {
			return true
		}
	}
	return false
}

// Fig9Table formats the rows.
func Fig9Table(rows []Fig9Row) *Table {
	t := NewTable("Fig 9: daily traffic speed extraction (case study)",
		"day", "trajs", "st4ml_ms", "geospark_ms", "speedup", "checks_match")
	for _, r := range rows {
		t.Add(r.Day, r.Trajs, r.ST4MLMs, r.GeoSparkMs,
			ratio(r.GeoSparkMs, r.ST4MLMs),
			closeEnoughF(r.ST4MLChecksum, r.GeoSparkChecksum))
	}
	return t
}

func closeEnoughF(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-6*scale+1e-9
}
