package bench

import (
	"os"
	"path/filepath"
	"time"
)

// warmStores reads every store file once so Fig. 7 timings measure
// processing rather than first-touch page-cache misses (the simulated
// cluster's "data already on HDFS datanodes" assumption).
func warmStores(env *Env) {
	for _, dir := range []string{
		env.EventDir, env.TrajDir,
		env.GSEventDir, env.GSTrajDir,
		env.GMEventDir, env.GMTrajDir,
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !e.IsDir() {
				_, _ = os.ReadFile(filepath.Join(dir, e.Name()))
			}
		}
	}
}

// Fig7Row is one bar of Fig. 7: one application on one system.
type Fig7Row struct {
	App      App
	System   SystemKind
	Ms       float64
	Checksum float64
	Records  int64
}

// Fig7 runs the eight end-to-end applications on the compared systems over
// numWindows sequential random ST ranges of the given fraction, reporting
// total processing time per (app, system). ST4ML-C is skipped when
// includeCustom is false (the paper's Fig. 7 uses the built-ins).
func Fig7(env *Env, apps []App, systems []SystemKind, frac float64, numWindows int) ([]Fig7Row, error) {
	warmStores(env)
	var rows []Fig7Row
	for _, app := range apps {
		windows := WindowsFor(app, frac, numWindows, 100+int64(len(app)))
		for _, sys := range systems {
			t0 := time.Now()
			res, err := RunApp(env, app, sys, windows)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig7Row{
				App:      app,
				System:   sys,
				Ms:       float64(time.Since(t0).Microseconds()) / 1000,
				Checksum: res.Checksum,
				Records:  res.Records,
			})
		}
	}
	return rows, nil
}

// Fig7Table formats the rows with per-app speedups over ST4ML-B.
func Fig7Table(rows []Fig7Row) *Table {
	t := NewTable("Fig 7: end-to-end feature extraction time (ms)",
		"app", "system", "ms", "vs_st4ml", "records", "checksum")
	base := map[App]float64{}
	for _, r := range rows {
		if r.System == ST4MLB {
			base[r.App] = r.Ms
		}
	}
	for _, r := range rows {
		rel := 0.0
		if b := base[r.App]; b > 0 {
			rel = r.Ms / b
		}
		t.Add(string(r.App), string(r.System), r.Ms, rel, r.Records, r.Checksum)
	}
	return t
}
