// Package tempo provides the temporal primitives of ST4ML: the Duration
// interval type used as the temporal field of every ST entry (§3.2.1 of the
// paper), plus the overlap, containment, and splitting utilities the
// selectors, partitioners, and converters rely on.
//
// Timestamps are int64 Unix seconds. A Duration with Start == End is an
// instant — the paper treats instants as a special case of durations.
package tempo

import (
	"fmt"
	"time"
)

// Duration is a closed time interval [Start, End] in Unix seconds.
type Duration struct {
	Start, End int64
}

// New constructs a Duration, normalizing the endpoint order.
func New(start, end int64) Duration {
	if end < start {
		start, end = end, start
	}
	return Duration{Start: start, End: end}
}

// Instant returns the degenerate interval [t, t].
func Instant(t int64) Duration { return Duration{Start: t, End: t} }

// FromTimes constructs a Duration from two time.Time values.
func FromTimes(start, end time.Time) Duration { return New(start.Unix(), end.Unix()) }

// Empty is the identity for Union: it contains nothing and unions to the
// other operand. It is represented by Start > End.
func Empty() Duration { return Duration{Start: 1, End: 0} }

// IsEmpty reports whether the interval contains no instants.
func (d Duration) IsEmpty() bool { return d.Start > d.End }

// IsInstant reports whether the interval is a single instant.
func (d Duration) IsInstant() bool { return d.Start == d.End }

// Seconds returns the interval length in seconds (0 for instants and empty
// intervals).
func (d Duration) Seconds() int64 {
	if d.IsEmpty() {
		return 0
	}
	return d.End - d.Start
}

// Center returns the midpoint of the interval.
func (d Duration) Center() int64 { return d.Start + (d.End-d.Start)/2 }

// Contains reports whether instant t lies in the interval.
func (d Duration) Contains(t int64) bool { return t >= d.Start && t <= d.End }

// ContainsDuration reports whether o lies entirely within d. Every interval
// contains the empty interval.
func (d Duration) ContainsDuration(o Duration) bool {
	if o.IsEmpty() {
		return true
	}
	return o.Start >= d.Start && o.End <= d.End
}

// Intersects reports whether the two intervals share at least one instant
// (touching endpoints count). Empty intervals intersect nothing.
func (d Duration) Intersects(o Duration) bool {
	if d.IsEmpty() || o.IsEmpty() {
		return false
	}
	return d.Start <= o.End && o.Start <= d.End
}

// Intersection returns the overlap of the two intervals (empty if disjoint).
func (d Duration) Intersection(o Duration) Duration {
	r := Duration{Start: max64(d.Start, o.Start), End: min64(d.End, o.End)}
	if r.IsEmpty() {
		return Empty()
	}
	return r
}

// Union returns the smallest interval covering both operands.
func (d Duration) Union(o Duration) Duration {
	if d.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return d
	}
	return Duration{Start: min64(d.Start, o.Start), End: max64(d.End, o.End)}
}

// ExpandTo returns the smallest interval covering d and instant t.
func (d Duration) ExpandTo(t int64) Duration { return d.Union(Instant(t)) }

// Buffer grows the interval by s seconds on both sides.
func (d Duration) Buffer(s int64) Duration {
	if d.IsEmpty() {
		return d
	}
	return Duration{Start: d.Start - s, End: d.End + s}
}

// Shift translates the interval by s seconds.
func (d Duration) Shift(s int64) Duration {
	if d.IsEmpty() {
		return d
	}
	return Duration{Start: d.Start + s, End: d.End + s}
}

// Split divides the interval into n consecutive sub-intervals of (nearly)
// equal length covering d exactly. Consecutive slots share no interior;
// slot i is [start_i, start_{i+1}) represented as closed [start_i,
// start_{i+1}-1], except the last slot which ends at d.End. Split panics for
// n < 1 and returns nil for empty intervals.
func (d Duration) Split(n int) []Duration {
	if n < 1 {
		panic("tempo: Split n < 1")
	}
	if d.IsEmpty() {
		return nil
	}
	total := d.End - d.Start + 1
	out := make([]Duration, 0, n)
	start := d.Start
	for i := 0; i < n; i++ {
		size := total / int64(n)
		if int64(i) < total%int64(n) {
			size++
		}
		if size <= 0 { // more slots than instants: remaining slots are empty
			out = append(out, Empty())
			continue
		}
		out = append(out, Duration{Start: start, End: start + size - 1})
		start += size
	}
	return out
}

// SplitByLength divides the interval into consecutive slots of length step
// seconds (the final slot may be shorter). Slots are half-open in spirit:
// [t, t+step) encoded as closed [t, t+step-1].
func (d Duration) SplitByLength(step int64) []Duration {
	if step < 1 {
		panic("tempo: SplitByLength step < 1")
	}
	if d.IsEmpty() {
		return nil
	}
	var out []Duration
	for t := d.Start; t <= d.End; t += step {
		end := t + step - 1
		if end > d.End {
			end = d.End
		}
		out = append(out, Duration{Start: t, End: end})
	}
	return out
}

// Sliding returns overlapping windows of the given width advancing by step
// seconds — the temporalSliding helper of §3.3. Windows start at d.Start
// and are emitted while they begin inside d; the final windows may extend
// past d.End (callers clip with Intersection if needed).
func (d Duration) Sliding(width, step int64) []Duration {
	if width < 1 || step < 1 {
		panic("tempo: Sliding needs width >= 1 and step >= 1")
	}
	if d.IsEmpty() {
		return nil
	}
	var out []Duration
	for t := d.Start; t <= d.End; t += step {
		out = append(out, Duration{Start: t, End: t + width - 1})
	}
	return out
}

// SlotIndex returns the index of the slot of length step (anchored at
// d.Start) containing instant t, or -1 when t is outside d.
func (d Duration) SlotIndex(t, step int64) int {
	if d.IsEmpty() || !d.Contains(t) || step < 1 {
		return -1
	}
	return int((t - d.Start) / step)
}

// String formats the interval as "[start, end]".
func (d Duration) String() string {
	if d.IsEmpty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%d, %d]", d.Start, d.End)
}

// HourOfDay returns the hour-of-day (0..23) of instant t in UTC.
func HourOfDay(t int64) int { return int(t % 86400 / 3600) }

// DayIndex returns the number of whole days since the Unix epoch for t.
func DayIndex(t int64) int64 { return t / 86400 }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
