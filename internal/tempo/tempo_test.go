package tempo

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewNormalizes(t *testing.T) {
	d := New(10, 5)
	if d.Start != 5 || d.End != 10 {
		t.Fatalf("New(10,5) = %v", d)
	}
}

func TestInstant(t *testing.T) {
	d := Instant(42)
	if !d.IsInstant() || d.Seconds() != 0 || !d.Contains(42) || d.Contains(43) {
		t.Errorf("instant misbehaves: %v", d)
	}
}

func TestFromTimes(t *testing.T) {
	a := time.Unix(100, 0)
	b := time.Unix(200, 0)
	if got := FromTimes(b, a); got != New(100, 200) {
		t.Errorf("FromTimes = %v", got)
	}
}

func TestEmpty(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() || e.Seconds() != 0 {
		t.Fatal("Empty not empty")
	}
	d := New(0, 10)
	if e.Intersects(d) || d.Intersects(e) {
		t.Error("empty intersects nothing")
	}
	if got := e.Union(d); got != d {
		t.Errorf("empty union = %v", got)
	}
	if !d.ContainsDuration(e) {
		t.Error("every interval contains empty")
	}
}

func TestIntersects(t *testing.T) {
	a := New(0, 10)
	cases := []struct {
		name string
		b    Duration
		want bool
	}{
		{"inside", New(2, 5), true},
		{"overlap", New(5, 15), true},
		{"touch end", New(10, 20), true},
		{"touch start", New(-5, 0), true},
		{"disjoint after", New(11, 20), false},
		{"disjoint before", New(-10, -1), false},
		{"containing", New(-5, 15), true},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("%s (sym): got %v want %v", c.name, got, c.want)
		}
	}
}

func TestIntersectionUnion(t *testing.T) {
	a, b := New(0, 10), New(5, 15)
	if got := a.Intersection(b); got != New(5, 10) {
		t.Errorf("Intersection = %v", got)
	}
	if got := a.Union(b); got != New(0, 15) {
		t.Errorf("Union = %v", got)
	}
	if !a.Intersection(New(20, 30)).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestBufferShift(t *testing.T) {
	d := New(10, 20)
	if got := d.Buffer(5); got != New(5, 25) {
		t.Errorf("Buffer = %v", got)
	}
	if got := d.Shift(-10); got != New(0, 10) {
		t.Errorf("Shift = %v", got)
	}
}

func TestSplitCoversExactly(t *testing.T) {
	d := New(0, 99) // 100 instants
	for _, n := range []int{1, 2, 3, 7, 10, 100} {
		slots := d.Split(n)
		if len(slots) != n {
			t.Fatalf("Split(%d) returned %d slots", n, len(slots))
		}
		// Slots are consecutive, disjoint, and cover d.
		if slots[0].Start != d.Start || slots[n-1].End != d.End {
			t.Fatalf("Split(%d) does not cover: %v", n, slots)
		}
		for i := 1; i < n; i++ {
			if slots[i].Start != slots[i-1].End+1 {
				t.Fatalf("Split(%d) gap at %d: %v %v", n, i, slots[i-1], slots[i])
			}
		}
	}
}

func TestSplitMoreSlotsThanInstants(t *testing.T) {
	d := New(0, 2) // 3 instants
	slots := d.Split(5)
	if len(slots) != 5 {
		t.Fatalf("want 5 slots, got %d", len(slots))
	}
	nonEmpty := 0
	for _, s := range slots {
		if !s.IsEmpty() {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Errorf("want 3 non-empty slots, got %d", nonEmpty)
	}
}

func TestSplitByLength(t *testing.T) {
	d := New(0, 9)
	slots := d.SplitByLength(4)
	want := []Duration{New(0, 3), New(4, 7), New(8, 9)}
	if len(slots) != len(want) {
		t.Fatalf("got %v", slots)
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Errorf("slot %d = %v, want %v", i, slots[i], want[i])
		}
	}
}

func TestSlotIndex(t *testing.T) {
	d := New(100, 199)
	if got := d.SlotIndex(100, 10); got != 0 {
		t.Errorf("SlotIndex(100) = %d", got)
	}
	if got := d.SlotIndex(155, 10); got != 5 {
		t.Errorf("SlotIndex(155) = %d", got)
	}
	if got := d.SlotIndex(99, 10); got != -1 {
		t.Errorf("SlotIndex(outside) = %d", got)
	}
}

func TestSliding(t *testing.T) {
	d := New(0, 99)
	ws := d.Sliding(50, 25)
	if len(ws) != 4 {
		t.Fatalf("windows = %v", ws)
	}
	if ws[0] != New(0, 49) || ws[1] != New(25, 74) || ws[3] != New(75, 124) {
		t.Errorf("windows = %v", ws)
	}
	// Overlap: consecutive windows share width-step instants.
	if got := ws[0].Intersection(ws[1]); got.Seconds()+1 != 25 {
		t.Errorf("overlap = %v", got)
	}
	if Empty().Sliding(10, 5) != nil {
		t.Error("empty sliding should be nil")
	}
}

func TestSlidingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 10).Sliding(0, 1)
}

func TestHourOfDayAndDayIndex(t *testing.T) {
	// 1970-01-02 03:00:00 UTC
	ts := int64(86400 + 3*3600)
	if got := HourOfDay(ts); got != 3 {
		t.Errorf("HourOfDay = %d", got)
	}
	if got := DayIndex(ts); got != 1 {
		t.Errorf("DayIndex = %d", got)
	}
}

func TestUnionProperties(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		a := New(a1%1e9, a2%1e9)
		b := New(b1%1e9, b2%1e9)
		u := a.Union(b)
		return u == b.Union(a) && u.ContainsDuration(a) && u.ContainsDuration(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionConsistentWithIntersects(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		a := New(a1%1e6, a2%1e6)
		b := New(b1%1e6, b2%1e6)
		return a.Intersects(b) == !a.Intersection(b).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitRandomizedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		start := rng.Int63n(1e9)
		d := New(start, start+rng.Int63n(1e6))
		n := 1 + rng.Intn(50)
		slots := d.Split(n)
		var covered int64
		for _, s := range slots {
			covered += s.Seconds() + 1
			if !s.IsEmpty() && !d.ContainsDuration(s) {
				t.Fatalf("slot %v escapes %v", s, d)
			}
		}
		// Empty slots contribute Seconds()+1 == 1, so subtract them.
		empties := 0
		for _, s := range slots {
			if s.IsEmpty() {
				empties++
			}
		}
		covered -= int64(empties)
		if covered != d.Seconds()+1 {
			t.Fatalf("Split covers %d instants, interval has %d", covered, d.Seconds()+1)
		}
	}
}
