package extract

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

// Event extractors (Table 3).

// EventAnomaly keeps events whose start hour-of-day falls in [hourLo,
// hourHi); a wrapped range like (23, 4) selects the night hours of the
// paper's anomaly application.
func EventAnomaly[S geom.Geometry, V, D any](
	r *engine.RDD[instance.Event[S, V, D]],
	hourLo, hourHi int,
) *engine.RDD[instance.Event[S, V, D]] {
	return r.Filter(func(e instance.Event[S, V, D]) bool {
		return HourInRange(tempo.HourOfDay(e.Entry.Temporal.Start), hourLo, hourHi)
	})
}

// HourInRange reports whether hour lies in [lo, hi), wrapping across
// midnight when lo > hi. lo == hi selects every hour.
func HourInRange(hour, lo, hi int) bool {
	if lo == hi {
		return true
	}
	if lo < hi {
		return hour >= lo && hour < hi
	}
	return hour >= lo || hour < hi
}

// CompanionPair reports that two records were within the companion
// thresholds of each other.
type CompanionPair[D any] struct {
	A, B D
}

// EventCompanion finds event pairs within distM metres and dtSec seconds of
// each other, comparing only within partitions — the input must be
// ST-partitioned with duplication so every true pair co-locates (the
// T-STR-with-duplication workload of Table 6). idOf must give distinct ids
// to distinct events; a pair is reported once per partition that contains
// both (callers dedupe with DedupCompanions when duplication is on).
func EventCompanion[S geom.Geometry, V, D any](
	r *engine.RDD[instance.Event[S, V, D]],
	distM float64,
	dtSec int64,
	idOf func(D) int64,
) *engine.RDD[CompanionPair[int64]] {
	return engine.MapPartitions(r, func(_ int, in []instance.Event[S, V, D]) []CompanionPair[int64] {
		items := make([]index.Item[int], len(in))
		for i, e := range in {
			items[i] = index.Item[int]{Box: e.Box(), Data: i}
		}
		tree := index.BulkLoadSTR(items, 16)
		var out []CompanionPair[int64]
		for i, e := range in {
			c := e.Entry.Spatial.Centroid()
			q := index.Box3(
				geom.MBR{
					MinX: c.X - geom.MetersToDegreesLon(distM, c.Y),
					MaxX: c.X + geom.MetersToDegreesLon(distM, c.Y),
					MinY: c.Y - geom.MetersToDegreesLat(distM),
					MaxY: c.Y + geom.MetersToDegreesLat(distM),
				},
				e.Entry.Temporal.Buffer(dtSec))
			idI := idOf(e.Data)
			tree.SearchFunc(q, func(j int, _ index.Box) bool {
				if j <= i {
					return true // each unordered pair once
				}
				o := in[j]
				if idOf(o.Data) == idI {
					return true
				}
				if geom.HaversineMeters(c, o.Entry.Spatial.Centroid()) <= distM &&
					e.Entry.Temporal.Buffer(dtSec).Intersects(o.Entry.Temporal) {
					out = append(out, orderedPair(idI, idOf(o.Data)))
				}
				return true
			})
		}
		return out
	})
}

func orderedPair(a, b int64) CompanionPair[int64] {
	if a > b {
		a, b = b, a
	}
	return CompanionPair[int64]{A: a, B: b}
}

// DedupCompanions removes duplicate pairs produced by partition
// duplication, returning the distinct pair count and the pairs.
func DedupCompanions(r *engine.RDD[CompanionPair[int64]]) []CompanionPair[int64] {
	all := r.Collect()
	seen := make(map[CompanionPair[int64]]bool, len(all))
	out := all[:0]
	for _, p := range all {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Cluster is one spatial cluster of events found by EventCluster.
type Cluster struct {
	// Center is the mean location of the cluster's core and border points.
	Center geom.Point
	// Size is the number of member events.
	Size int
}

// EventCluster runs DBSCAN per partition over event centroids (epsM metres,
// minPts density) and reports the clusters found — the hot-spot extraction
// of Table 2. Clusters spanning partition borders are reported per
// partition; ST-partitioning with duplication bounds the error, as in the
// paper's clustering pipeline.
func EventCluster[S geom.Geometry, V, D any](
	r *engine.RDD[instance.Event[S, V, D]],
	epsM float64,
	minPts int,
) *engine.RDD[Cluster] {
	return engine.MapPartitions(r, func(_ int, in []instance.Event[S, V, D]) []Cluster {
		pts := make([]geom.Point, len(in))
		items := make([]index.Item[int], len(in))
		for i, e := range in {
			pts[i] = e.Entry.Spatial.Centroid()
			items[i] = index.Item[int]{Box: index.Box2(pts[i].MBR()), Data: i}
		}
		tree := index.BulkLoadSTR(items, 16)
		neighbors := func(i int) []int {
			p := pts[i]
			q := index.Box2(geom.MBR{
				MinX: p.X - geom.MetersToDegreesLon(epsM, p.Y),
				MaxX: p.X + geom.MetersToDegreesLon(epsM, p.Y),
				MinY: p.Y - geom.MetersToDegreesLat(epsM),
				MaxY: p.Y + geom.MetersToDegreesLat(epsM),
			})
			var out []int
			tree.SearchFunc(q, func(j int, _ index.Box) bool {
				if geom.HaversineMeters(p, pts[j]) <= epsM {
					out = append(out, j)
				}
				return true
			})
			return out
		}
		const (
			unvisited = 0
			noise     = -1
		)
		labels := make([]int, len(in)) // 0 unvisited, -1 noise, >0 cluster id
		next := 0
		var clusters []Cluster
		for i := range in {
			if labels[i] != unvisited {
				continue
			}
			seed := neighbors(i)
			if len(seed) < minPts {
				labels[i] = noise
				continue
			}
			next++
			labels[i] = next
			var members []int
			members = append(members, i)
			queue := append([]int(nil), seed...)
			for len(queue) > 0 {
				j := queue[0]
				queue = queue[1:]
				if labels[j] == noise {
					labels[j] = next
					members = append(members, j)
				}
				if labels[j] != unvisited {
					continue
				}
				labels[j] = next
				members = append(members, j)
				if nb := neighbors(j); len(nb) >= minPts {
					queue = append(queue, nb...)
				}
			}
			var cx, cy float64
			for _, m := range members {
				cx += pts[m].X
				cy += pts[m].Y
			}
			n := float64(len(members))
			clusters = append(clusters, Cluster{
				Center: geom.Pt(cx/n, cy/n),
				Size:   len(members),
			})
		}
		return clusters
	})
}
