package extract

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/pointpat"
)

// Point-pattern extractors: the Extraction-stage face of internal/pointpat.
// Both reduce an event RDD to its observation points (centroid + interval
// start) and hand off to the distributed estimators, which re-partition
// with an ST planner and exchange boundary halos internally — so callers
// feed them whatever partitioning the Selection stage produced.

// eventPoints projects an event RDD onto pattern observations.
func eventPoints[S geom.Geometry, V, D any](r *engine.RDD[instance.Event[S, V, D]]) []pointpat.Point {
	return engine.Map(r, func(e instance.Event[S, V, D]) pointpat.Point {
		c := e.Entry.Spatial.Centroid()
		return pointpat.Point{X: c.X, Y: c.Y, T: e.Entry.Temporal.Start}
	}).Collect()
}

// EventRipleyK estimates the edge-corrected space-time Ripley's K function
// of an event RDD over cfg's radius×lag grid, using the distributed
// halo-corrected estimator (bit-identical to a single-partition brute
// force).
func EventRipleyK[S geom.Geometry, V, D any](
	r *engine.RDD[instance.Event[S, V, D]],
	cfg pointpat.KConfig,
) (*pointpat.KResult, error) {
	return pointpat.DistributedK(r.Ctx(), eventPoints(r), cfg)
}

// EventGetisOrd computes Getis-Ord Gi* hot-spot z-scores of an event RDD
// over cfg's raster, binning through the Conversion stage and scoring in
// parallel (bit-identical to the naive single-pass oracle).
func EventGetisOrd[S geom.Geometry, V, D any](
	r *engine.RDD[instance.Event[S, V, D]],
	cfg pointpat.GetisConfig,
) (*pointpat.GetisResult, error) {
	return pointpat.DistributedGiStar(r.Ctx(), eventPoints(r), cfg)
}
