package extract_test

import (
	"fmt"

	"st4ml/internal/convert"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

// ExampleTsFlow shows the hourly-flow pipeline of Table 7: events are
// converted to a time series whose cells collect them, then the built-in
// flow extractor counts per slot and merges the distributed partials.
func ExampleTsFlow() {
	ctx := engine.New(engine.Config{Slots: 2})
	type ev = instance.Event[geom.Point, instance.Unit, int64]
	events := []ev{
		instance.NewEvent(geom.Pt(1, 1), tempo.Instant(100), instance.Unit{}, int64(1)),
		instance.NewEvent(geom.Pt(2, 2), tempo.Instant(200), instance.Unit{}, int64(2)),
		instance.NewEvent(geom.Pt(3, 3), tempo.Instant(4000), instance.Unit{}, int64(3)),
	}
	r := engine.Parallelize(ctx, events, 2)
	tgt := convert.TimeGridTarget(instance.TimeGrid{Window: tempo.New(0, 7199), NT: 2})
	cells := convert.EventToTimeSeries(r, tgt, convert.Auto,
		func(in []ev) []ev { return in })
	ts, _ := extract.TsFlow(cells)
	for i, e := range ts.Entries {
		fmt.Printf("slot %d: %d events\n", i, e.Value)
	}
	// Output:
	// slot 0: 2 events
	// slot 1: 1 events
}

// ExampleMapRasterValuePlus shows the Table 4 extension API: custom logic
// written against one cell value plus its ST boundaries, executed by the
// engine across every instance.
func ExampleMapRasterValuePlus() {
	ctx := engine.New(engine.Config{Slots: 2})
	grid := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 2, 1), NX: 2, NY: 1},
		Time:  instance.TimeGrid{Window: tempo.New(0, 9), NT: 1},
	}
	cells, slots := grid.Build()
	ra := instance.NewRaster(cells, slots, []int64{3, 5}, instance.Unit{})
	r := engine.Parallelize(ctx, []instance.Raster[geom.MBR, int64, instance.Unit]{ra}, 1)
	perArea := extract.MapRasterValuePlus(r,
		func(v int64, cell geom.MBR, slot tempo.Duration) float64 {
			return float64(v) / cell.Area()
		})
	out := perArea.Collect()[0]
	fmt.Printf("%.0f %.0f\n", out.Entries[0].Value, out.Entries[1].Value)
	// Output:
	// 3 5
}

// ExampleTrajStayPoints extracts stay points from a trajectory that pauses
// for ten minutes.
func ExampleTrajStayPoints() {
	ctx := engine.New(engine.Config{Slots: 2})
	entries := []instance.Entry[geom.Point, instance.Unit]{
		{Spatial: geom.Pt(0, 0), Temporal: tempo.Instant(0)},
		{Spatial: geom.Pt(0.00001, 0), Temporal: tempo.Instant(700)}, // ~1 m later
		{Spatial: geom.Pt(0.1, 0), Temporal: tempo.Instant(800)},     // moved away
	}
	tr := instance.NewTrajectory(entries, int64(42))
	r := engine.Parallelize(ctx, []instance.Trajectory[instance.Unit, int64]{tr}, 1)
	got := extract.TrajStayPoints(r, 200, 600).Collect()
	fmt.Printf("traj %d: %d stay point(s), %ds long\n",
		got[0].Key, len(got[0].Value),
		got[0].Value[0].LeaveAt-got[0].Value[0].ArriveAt)
	// Output:
	// traj 42: 1 stay point(s), 700s long
}
