// Package extract implements ST4ML's Extraction stage (§3.3): the built-in
// feature extractors of Table 3, the RDD-level extension APIs of Table 4
// (MapValue, MapValuePlus, MapData, MapDataPlus, CollectAndMerge), and the
// accumulator helpers custom extractors compose.
//
// Built-in extractors operate either on converted collective-instance RDDs
// (one partial instance per partition, as the converters emit) or directly
// on singular-instance RDDs, and reduce to a single merged result on the
// driver where the paper's extractor does.
package extract

import "math"

// MeanAcc accumulates a running mean: the merge-friendly aggregate used by
// the speed extractors.
type MeanAcc struct {
	Sum float64
	N   int64
}

// Add folds one observation.
func (a MeanAcc) Add(v float64) MeanAcc { return MeanAcc{Sum: a.Sum + v, N: a.N + 1} }

// Merge combines two accumulators.
func (a MeanAcc) Merge(b MeanAcc) MeanAcc { return MeanAcc{Sum: a.Sum + b.Sum, N: a.N + b.N} }

// Mean returns the mean, or NaN when empty.
func (a MeanAcc) Mean() float64 {
	if a.N == 0 {
		return math.NaN()
	}
	return a.Sum / float64(a.N)
}

// InOut counts flow transitions through a cell: entries and exits.
type InOut struct {
	In  int64
	Out int64
}

// Merge combines two counters.
func (a InOut) Merge(b InOut) InOut { return InOut{In: a.In + b.In, Out: a.Out + b.Out} }

// SpeedUnit selects the output unit of the speed extractors.
type SpeedUnit int

const (
	// MPS reports metres per second.
	MPS SpeedUnit = iota
	// KMH reports kilometres per hour.
	KMH
)

// Convert rescales a metres-per-second value into the unit.
func (u SpeedUnit) Convert(mps float64) float64 {
	if u == KMH {
		return mps * 3.6
	}
	return mps
}
