package extract

import (
	"math"
	"math/rand"
	"testing"

	"st4ml/internal/convert"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

type uev = instance.Event[geom.Point, instance.Unit, int64]
type utraj = instance.Trajectory[instance.Unit, int64]

func testCtx() *engine.Context { return engine.New(engine.Config{Slots: 4}) }

func mkEvent(x, y float64, t int64, id int64) uev {
	return instance.NewEvent(geom.Pt(x, y), tempo.Instant(t), instance.Unit{}, id)
}

func mkTraj(id int64, pts []geom.Point, times []int64) utraj {
	entries := make([]instance.Entry[geom.Point, instance.Unit], len(pts))
	for i := range pts {
		entries[i] = instance.Entry[geom.Point, instance.Unit]{
			Spatial: pts[i], Temporal: tempo.Instant(times[i]),
		}
	}
	return instance.NewTrajectory(entries, id)
}

func TestMeanAcc(t *testing.T) {
	var a MeanAcc
	if !math.IsNaN(a.Mean()) {
		t.Error("empty mean should be NaN")
	}
	a = a.Add(2).Add(4)
	b := MeanAcc{}.Add(6)
	if m := a.Merge(b).Mean(); m != 4 {
		t.Errorf("mean = %g", m)
	}
}

func TestSpeedUnit(t *testing.T) {
	if KMH.Convert(10) != 36 {
		t.Error("KMH conversion")
	}
	if MPS.Convert(10) != 10 {
		t.Error("MPS conversion")
	}
}

func TestHourInRange(t *testing.T) {
	cases := []struct {
		h, lo, hi int
		want      bool
	}{
		{3, 1, 5, true}, {5, 1, 5, false}, {1, 1, 5, true},
		{23, 23, 4, true}, {2, 23, 4, true}, {4, 23, 4, false}, {12, 23, 4, false},
		{7, 7, 7, true},
	}
	for _, c := range cases {
		if got := HourInRange(c.h, c.lo, c.hi); got != c.want {
			t.Errorf("HourInRange(%d, %d, %d) = %v", c.h, c.lo, c.hi, got)
		}
	}
}

func TestEventAnomaly(t *testing.T) {
	ctx := testCtx()
	// Hours: 0, 3, 12, 23.
	events := []uev{
		mkEvent(0, 0, 0, 1),
		mkEvent(0, 0, 3*3600, 2),
		mkEvent(0, 0, 12*3600, 3),
		mkEvent(0, 0, 23*3600, 4),
	}
	r := engine.Parallelize(ctx, events, 2)
	got := EventAnomaly(r, 23, 4).Collect()
	ids := map[int64]bool{}
	for _, e := range got {
		ids[e.Data] = true
	}
	if len(got) != 3 || !ids[1] || !ids[2] || !ids[4] {
		t.Errorf("anomalies = %v", ids)
	}
}

func TestEventCompanion(t *testing.T) {
	ctx := testCtx()
	// Two close-in-ST events, one far in space, one far in time.
	events := []uev{
		mkEvent(0, 0, 1000, 1),
		mkEvent(0.0001, 0, 1100, 2), // ~11 m, 100 s away from #1
		mkEvent(1, 1, 1000, 3),      // far away
		mkEvent(0, 0, 99000, 4),     // far in time
	}
	r := engine.Parallelize(ctx, events, 1) // one partition: all comparable
	pairs := DedupCompanions(EventCompanion(r, 100, 900, func(d int64) int64 { return d }))
	if len(pairs) != 1 || pairs[0] != (CompanionPair[int64]{A: 1, B: 2}) {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestEventCompanionDedupAcrossPartitions(t *testing.T) {
	ctx := testCtx()
	// The same pair in two partitions (as duplication mode would place it).
	events := []uev{
		mkEvent(0, 0, 1000, 1), mkEvent(0.0001, 0, 1100, 2),
		mkEvent(0, 0, 1000, 1), mkEvent(0.0001, 0, 1100, 2),
	}
	r := engine.FromPartitions(ctx, "dup", [][]uev{events[:2], events[2:]})
	pairs := DedupCompanions(EventCompanion(r, 100, 900, func(d int64) int64 { return d }))
	if len(pairs) != 1 {
		t.Errorf("deduped pairs = %v", pairs)
	}
}

func TestEventCluster(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(1))
	var events []uev
	// Two dense blobs ~50 m wide, plus sparse noise.
	blobs := []geom.Point{geom.Pt(0, 0), geom.Pt(0.01, 0.01)}
	id := int64(0)
	for _, b := range blobs {
		for i := 0; i < 50; i++ {
			events = append(events, mkEvent(
				b.X+geom.MetersToDegreesLon(rng.NormFloat64()*20, 0),
				b.Y+geom.MetersToDegreesLat(rng.NormFloat64()*20),
				1000, id))
			id++
		}
	}
	for i := 0; i < 10; i++ {
		events = append(events, mkEvent(
			0.05+rng.Float64()*0.1, 0.05+rng.Float64()*0.1, 1000, id))
		id++
	}
	r := engine.Parallelize(ctx, events, 1)
	clusters := EventCluster(r, 100, 5).Collect()
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	for _, c := range clusters {
		if c.Size < 40 {
			t.Errorf("cluster too small: %+v", c)
		}
	}
}

func TestTrajSpeedAndOD(t *testing.T) {
	ctx := testCtx()
	// ~111 km east in one hour: ~30.9 m/s.
	tr := mkTraj(7, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, []int64{0, 3600})
	r := engine.Parallelize(ctx, []utraj{tr}, 1)
	sp := TrajSpeed(r, KMH).Collect()
	if len(sp) != 1 || sp[0].Key != 7 {
		t.Fatalf("speed = %v", sp)
	}
	if sp[0].Value < 105 || sp[0].Value > 118 {
		t.Errorf("speed = %g km/h, want ~111", sp[0].Value)
	}
	od := TrajOD(r).Collect()
	if od[0].Value.Origin != geom.Pt(0, 0) || od[0].Value.Destination != geom.Pt(1, 0) {
		t.Errorf("OD = %+v", od[0].Value)
	}
	if od[0].Value.StartTime != 0 || od[0].Value.EndTime != 3600 {
		t.Errorf("OD times = %+v", od[0].Value)
	}
}

func TestStayPoints(t *testing.T) {
	// Move, stay 700 s within 50 m, move on.
	step := geom.MetersToDegreesLon(300, 0)
	tiny := geom.MetersToDegreesLon(10, 0)
	pts := []geom.Point{
		geom.Pt(0, 0),
		geom.Pt(step, 0),           // moving
		geom.Pt(2*step, 0),         // stay anchor
		geom.Pt(2*step+tiny, 0),    // within 50 m
		geom.Pt(2*step+2*tiny, 0),  // within 50 m
		geom.Pt(2*step+20*tiny, 0), // left
	}
	times := []int64{0, 100, 200, 500, 900, 1000}
	sps := StayPointsOf(mkTraj(1, pts, times).Entries, 50, 600)
	if len(sps) != 1 {
		t.Fatalf("stay points = %+v", sps)
	}
	if sps[0].ArriveAt != 200 || sps[0].LeaveAt != 900 {
		t.Errorf("stay interval = %+v", sps[0])
	}
	// No stay when the duration threshold is higher.
	if got := StayPointsOf(mkTraj(1, pts, times).Entries, 50, 800); len(got) != 0 {
		t.Errorf("unexpected stay points: %+v", got)
	}
}

func TestTrajTurnings(t *testing.T) {
	ctx := testCtx()
	// Right-angle turn at (1,0).
	tr := mkTraj(3,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(1, 2)},
		[]int64{0, 10, 20, 30})
	r := engine.Parallelize(ctx, []utraj{tr}, 1)
	got := TrajTurnings(r, 45).Collect()
	if len(got) != 1 || len(got[0].Value) != 1 {
		t.Fatalf("turnings = %+v", got)
	}
	tp := got[0].Value[0]
	if tp.Loc != geom.Pt(1, 0) || math.Abs(tp.AngleDeg-90) > 1e-6 {
		t.Errorf("turning = %+v", tp)
	}
}

func TestTrajCompanion(t *testing.T) {
	ctx := testCtx()
	// a and b travel together; c is elsewhere.
	a := mkTraj(1, []geom.Point{geom.Pt(0, 0), geom.Pt(0.001, 0)}, []int64{0, 60})
	b := mkTraj(2, []geom.Point{geom.Pt(0.0001, 0), geom.Pt(0.0011, 0)}, []int64{10, 70})
	c := mkTraj(3, []geom.Point{geom.Pt(1, 1), geom.Pt(1.001, 1)}, []int64{0, 60})
	r := engine.Parallelize(ctx, []utraj{a, b, c}, 1)
	pairs := DedupCompanions(TrajCompanion(r, 50, 120, func(d int64) int64 { return d }))
	if len(pairs) != 1 || pairs[0] != (CompanionPair[int64]{A: 1, B: 2}) {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestTsFlowAndWindowFreq(t *testing.T) {
	ctx := testCtx()
	var events []uev
	// 10 events in hour 0, 20 in hour 1, 5 in hour 2.
	for i := 0; i < 10; i++ {
		events = append(events, mkEvent(0, 0, int64(i), int64(i)))
	}
	for i := 0; i < 20; i++ {
		events = append(events, mkEvent(0, 0, 3600+int64(i), int64(100+i)))
	}
	for i := 0; i < 5; i++ {
		events = append(events, mkEvent(0, 0, 7200+int64(i), int64(200+i)))
	}
	r := engine.Parallelize(ctx, events, 3)
	tgt := convert.TimeGridTarget(instance.TimeGrid{Window: tempo.New(0, 3*3600-1), NT: 3})
	cells := convert.EventToTimeSeries(r, tgt, convert.Auto, func(in []uev) []uev { return in })
	ts, ok := TsFlow(cells)
	if !ok {
		t.Fatal("empty flow")
	}
	want := []int64{10, 20, 5}
	for i, w := range want {
		if ts.Entries[i].Value != w {
			t.Errorf("slot %d = %d, want %d", i, ts.Entries[i].Value, w)
		}
	}
	freq := TsWindowFreq(ts, 2)
	if len(freq) != 2 || freq[0] != 30 || freq[1] != 25 {
		t.Errorf("window freq = %v", freq)
	}
	if got := TsWindowFreq(ts, 5); got != nil {
		t.Errorf("oversized window = %v", got)
	}
}

func TestSmFlowAndSpeed(t *testing.T) {
	ctx := testCtx()
	// Trajectories confined to single cells of a 2×1 grid.
	left := mkTraj(1, []geom.Point{geom.Pt(0.1, 0.5), geom.Pt(0.2, 0.5)}, []int64{0, 100})
	right := mkTraj(2, []geom.Point{geom.Pt(1.1, 0.5), geom.Pt(1.4, 0.5)}, []int64{0, 100})
	right2 := mkTraj(3, []geom.Point{geom.Pt(1.5, 0.5), geom.Pt(1.8, 0.5)}, []int64{0, 100})
	r := engine.Parallelize(ctx, []utraj{left, right, right2}, 2)
	grid := instance.SpatialGrid{Extent: geom.Box(0, 0, 2, 1), NX: 2, NY: 1}
	cells := convert.TrajToSpatialMap(r, convert.SpatialGridTarget(grid), convert.Auto,
		func(in []utraj) []utraj { return in })
	flow, ok := SmFlow(cells)
	if !ok || flow.Entries[0].Value != 1 || flow.Entries[1].Value != 2 {
		t.Errorf("flow = %+v", flow.Entries)
	}
	speed, ok := SmSpeed(cells, MPS)
	if !ok {
		t.Fatal("no speed")
	}
	if speed.Entries[0].Value <= 0 || speed.Entries[1].Value <= 0 {
		t.Errorf("speeds = %+v", speed.Entries)
	}
	// Right cell's mean is the mean of trajectories 2 and 3.
	s2 := right.AvgSpeedMps()
	s3 := right2.AvgSpeedMps()
	if got := speed.Entries[1].Value; math.Abs(got-(s2+s3)/2) > 1e-9 {
		t.Errorf("right speed = %g, want %g", got, (s2+s3)/2)
	}
}

func TestRasterFlowAndSpeed(t *testing.T) {
	ctx := testCtx()
	tr1 := mkTraj(1, []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.6, 0.5)}, []int64{0, 50})
	tr2 := mkTraj(2, []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.6, 0.5)}, []int64{1000, 1050})
	r := engine.Parallelize(ctx, []utraj{tr1, tr2}, 2)
	g := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 1, 1), NX: 1, NY: 1},
		Time:  instance.TimeGrid{Window: tempo.New(0, 1999), NT: 2},
	}
	cells := convert.TrajToRaster(r, convert.RasterGridTarget(g), convert.Auto,
		func(in []utraj) []utraj { return in })
	flow, ok := RasterFlow(cells)
	if !ok || flow.Entries[0].Value != 1 || flow.Entries[1].Value != 1 {
		t.Errorf("raster flow = %+v", flow.Entries)
	}
	speed, ok := RasterSpeed(cells, KMH)
	if !ok {
		t.Fatal("no raster speed")
	}
	if speed.Entries[0].Value.Count != 1 || speed.Entries[0].Value.Mean <= 0 {
		t.Errorf("raster speed = %+v", speed.Entries[0].Value)
	}
}

func TestSmTransit(t *testing.T) {
	ctx := testCtx()
	// One trajectory crossing from cell 0 to cell 1 and back.
	tr := mkTraj(1,
		[]geom.Point{geom.Pt(0.5, 0.5), geom.Pt(1.5, 0.5), geom.Pt(0.5, 0.5)},
		[]int64{0, 100, 200})
	r := engine.Parallelize(ctx, []utraj{tr}, 1)
	grid := instance.SpatialGrid{Extent: geom.Box(0, 0, 2, 1), NX: 2, NY: 1}
	sm := SmTransit(r, grid)
	if sm.Entries[0].Value != (InOut{In: 1, Out: 1}) {
		t.Errorf("cell 0 = %+v", sm.Entries[0].Value)
	}
	if sm.Entries[1].Value != (InOut{In: 1, Out: 1}) {
		t.Errorf("cell 1 = %+v", sm.Entries[1].Value)
	}
}

func TestRasterTransit(t *testing.T) {
	ctx := testCtx()
	// Crossing at t=100 (slot 0) and back at t=1100 (slot 1).
	tr := mkTraj(1,
		[]geom.Point{geom.Pt(0.5, 0.5), geom.Pt(1.5, 0.5), geom.Pt(0.5, 0.5)},
		[]int64{0, 100, 1100})
	r := engine.Parallelize(ctx, []utraj{tr}, 1)
	g := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 2, 1), NX: 2, NY: 1},
		Time:  instance.TimeGrid{Window: tempo.New(0, 1999), NT: 2},
	}
	ra := RasterTransit(r, g)
	// Index layout: slot0 cells 0,1 then slot1 cells 2,3. Exits are charged
	// to the slot of the departing observation.
	if ra.Entries[0].Value.Out != 1 { // cell 0, slot 0: exit at t=100
		t.Errorf("cell0/slot0 = %+v", ra.Entries[0].Value)
	}
	if ra.Entries[1].Value != (InOut{In: 1, Out: 1}) { // cell 1, slot 0: enter t=100, exit charged at departure slot
		t.Errorf("cell1/slot0 = %+v", ra.Entries[1].Value)
	}
	if ra.Entries[2].Value.In != 1 { // cell 0, slot 1: entry at t=1100
		t.Errorf("cell0/slot1 = %+v", ra.Entries[2].Value)
	}
	if ra.Entries[3].Value != (InOut{}) { // cell 1, slot 1: nothing
		t.Errorf("cell1/slot1 = %+v", ra.Entries[3].Value)
	}
}

func TestMapValuePlusProvidesBounds(t *testing.T) {
	ctx := testCtx()
	g := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 2, 2), NX: 2, NY: 2},
		Time:  instance.TimeGrid{Window: tempo.New(0, 99), NT: 1},
	}
	cells, slots := g.Build()
	values := make([][]int, len(cells))
	ra := instance.NewRaster(cells, slots, values, instance.Unit{})
	r := engine.Parallelize(ctx, []instance.Raster[geom.MBR, []int, instance.Unit]{ra}, 1)
	got := MapRasterValuePlus(r, func(_ []int, cell geom.MBR, slot tempo.Duration) float64 {
		return cell.Area() * float64(slot.Seconds())
	}).Collect()[0]
	for _, e := range got.Entries {
		if e.Value != 99 { // area 1 × 99 s
			t.Errorf("value = %g", e.Value)
		}
	}
}

func TestCollectAndMergeEmpty(t *testing.T) {
	ctx := testCtx()
	r := engine.Parallelize(ctx, []instance.TimeSeries[int64, instance.Unit]{}, 2)
	if _, ok := CollectAndMergeTimeSeries(r, func(a, b int64) int64 { return a + b }); ok {
		t.Error("empty merge should report !ok")
	}
}

func TestTsWindowFreqPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ts := instance.NewTimeSeries(tempo.New(0, 9).Split(2), []int64{1, 2}, geom.EmptyMBR(), instance.Unit{})
	TsWindowFreq(ts, 0)
}
