package extract

import (
	"math"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/instance"
)

// Trajectory extractors (Table 3).

// TrajSpeed extracts the average speed of every trajectory, keyed by its
// data field — the paper's average-speed application.
func TrajSpeed[V, D any](
	r *engine.RDD[instance.Trajectory[V, D]],
	unit SpeedUnit,
) *engine.RDD[codec.Pair[D, float64]] {
	return engine.Map(r, func(tr instance.Trajectory[V, D]) codec.Pair[D, float64] {
		return codec.KV(tr.Data, unit.Convert(tr.AvgSpeedMps()))
	})
}

// OD is one trajectory's origin-destination summary.
type OD struct {
	Origin      geom.Point
	Destination geom.Point
	StartTime   int64
	EndTime     int64
}

// TrajOD extracts the origin-destination pair of every trajectory.
func TrajOD[V, D any](
	r *engine.RDD[instance.Trajectory[V, D]],
) *engine.RDD[codec.Pair[D, OD]] {
	return engine.Map(r, func(tr instance.Trajectory[V, D]) codec.Pair[D, OD] {
		first := tr.Entries[0]
		last := tr.Entries[len(tr.Entries)-1]
		return codec.KV(tr.Data, OD{
			Origin:      first.Spatial,
			Destination: last.Spatial,
			StartTime:   first.Temporal.Start,
			EndTime:     last.Temporal.End,
		})
	})
}

// StayPoint is a detected stop: the mean location of a point run that
// stayed within the distance threshold for at least the duration threshold.
type StayPoint struct {
	Loc      geom.Point
	ArriveAt int64
	LeaveAt  int64
}

// TrajStayPoints extracts stay points from every trajectory using the
// classic anchor-window algorithm: a stay point is reported when all
// successive points remain within distM metres of an anchor for at least
// minDurSec seconds — the (200 m, 10 min) application of Table 7.
func TrajStayPoints[V, D any](
	r *engine.RDD[instance.Trajectory[V, D]],
	distM float64,
	minDurSec int64,
) *engine.RDD[codec.Pair[D, []StayPoint]] {
	return engine.Map(r, func(tr instance.Trajectory[V, D]) codec.Pair[D, []StayPoint] {
		return codec.KV(tr.Data, StayPointsOf(tr.Entries, distM, minDurSec))
	})
}

// StayPointsOf runs the stay-point scan over one entry sequence.
func StayPointsOf[V any](entries []instance.Entry[geom.Point, V], distM float64, minDurSec int64) []StayPoint {
	var out []StayPoint
	i := 0
	for i < len(entries) {
		j := i + 1
		for j < len(entries) &&
			geom.HaversineMeters(entries[i].Spatial, entries[j].Spatial) <= distM {
			j++
		}
		dur := entries[j-1].Temporal.End - entries[i].Temporal.Start
		if j-1 > i && dur >= minDurSec {
			var cx, cy float64
			for k := i; k < j; k++ {
				cx += entries[k].Spatial.X
				cy += entries[k].Spatial.Y
			}
			n := float64(j - i)
			out = append(out, StayPoint{
				Loc:      geom.Pt(cx/n, cy/n),
				ArriveAt: entries[i].Temporal.Start,
				LeaveAt:  entries[j-1].Temporal.End,
			})
			i = j
			continue
		}
		i++
	}
	return out
}

// TurningPoint is a sharp heading change along a trajectory.
type TurningPoint struct {
	Loc      geom.Point
	Time     int64
	AngleDeg float64
}

// TrajTurnings extracts points where the heading changes by at least
// minAngleDeg degrees.
func TrajTurnings[V, D any](
	r *engine.RDD[instance.Trajectory[V, D]],
	minAngleDeg float64,
) *engine.RDD[codec.Pair[D, []TurningPoint]] {
	return engine.Map(r, func(tr instance.Trajectory[V, D]) codec.Pair[D, []TurningPoint] {
		var out []TurningPoint
		for i := 1; i+1 < len(tr.Entries); i++ {
			a := tr.Entries[i-1].Spatial
			b := tr.Entries[i].Spatial
			c := tr.Entries[i+1].Spatial
			turn := headingChangeDeg(a, b, c)
			if turn >= minAngleDeg {
				out = append(out, TurningPoint{
					Loc:      b,
					Time:     tr.Entries[i].Temporal.Start,
					AngleDeg: turn,
				})
			}
		}
		return codec.KV(tr.Data, out)
	})
}

// headingChangeDeg returns the absolute heading change at b along a→b→c in
// degrees (0 = straight, 180 = U-turn). Degenerate zero-length legs report
// 0.
func headingChangeDeg(a, b, c geom.Point) float64 {
	v1x, v1y := b.X-a.X, b.Y-a.Y
	v2x, v2y := c.X-b.X, c.Y-b.Y
	n1 := math.Hypot(v1x, v1y)
	n2 := math.Hypot(v2x, v2y)
	if n1 == 0 || n2 == 0 {
		return 0
	}
	cos := (v1x*v2x + v1y*v2y) / (n1 * n2)
	cos = math.Max(-1, math.Min(1, cos))
	return math.Acos(cos) * 180 / math.Pi
}

// TrajCompanion finds trajectory pairs that were ever within distM metres
// and dtSec seconds of each other, comparing point-wise within partitions
// (the Table 6 companion workload; partition with duplication for
// completeness). Pairs are keyed by idOf and deduped per partition.
func TrajCompanion[V, D any](
	r *engine.RDD[instance.Trajectory[V, D]],
	distM float64,
	dtSec int64,
	idOf func(D) int64,
) *engine.RDD[CompanionPair[int64]] {
	return engine.MapPartitions(r, func(_ int, in []instance.Trajectory[V, D]) []CompanionPair[int64] {
		// Coarse filter by buffered trajectory boxes, then exact pointwise.
		items := make([]index.Item[int], len(in))
		for i, tr := range in {
			items[i] = index.Item[int]{Box: tr.Box(), Data: i}
		}
		tree := index.BulkLoadSTR(items, 16)
		seen := map[CompanionPair[int64]]bool{}
		var out []CompanionPair[int64]
		for i, tr := range in {
			b := tr.Box()
			ext := b.Spatial()
			q := index.Box3(geom.MBR{
				MinX: ext.MinX - geom.MetersToDegreesLon(distM, ext.MinY),
				MaxX: ext.MaxX + geom.MetersToDegreesLon(distM, ext.MinY),
				MinY: ext.MinY - geom.MetersToDegreesLat(distM),
				MaxY: ext.MaxY + geom.MetersToDegreesLat(distM),
			}, b.Temporal().Buffer(dtSec))
			idI := idOf(tr.Data)
			tree.SearchFunc(q, func(j int, _ index.Box) bool {
				if j <= i {
					return true
				}
				idJ := idOf(in[j].Data)
				if idJ == idI {
					return true
				}
				pair := orderedPair(idI, idJ)
				if seen[pair] {
					return true
				}
				if trajsCompanion(tr, in[j], distM, dtSec) {
					seen[pair] = true
					out = append(out, pair)
				}
				return true
			})
		}
		return out
	})
}

// trajsCompanion reports whether any point pair across the two trajectories
// is within both thresholds.
func trajsCompanion[V, D any](a, b instance.Trajectory[V, D], distM float64, dtSec int64) bool {
	for _, ea := range a.Entries {
		for _, eb := range b.Entries {
			if !ea.Temporal.Buffer(dtSec).Intersects(eb.Temporal) {
				continue
			}
			if geom.HaversineMeters(ea.Spatial, eb.Spatial) <= distM {
				return true
			}
		}
	}
	return false
}
