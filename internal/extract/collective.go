package extract

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
)

// Collective-instance extractors (Table 3). Flow and speed extractors
// consume converted collective RDDs (cells holding singular instances);
// transit extractors run their own grid pipeline over trajectories.

// TsFlow counts the objects in every time slot and merges the distributed
// partials into one series — the hourly-flow application of Table 7.
func TsFlow[E, D any](
	r *engine.RDD[instance.TimeSeries[[]E, D]],
) (instance.TimeSeries[int64, D], bool) {
	counts := MapTimeSeriesValue(r, func(v []E) int64 { return int64(len(v)) })
	return CollectAndMergeTimeSeries(counts, func(a, b int64) int64 { return a + b })
}

// TsSpeed computes the mean trajectory speed per time slot.
func TsSpeed[V, DT, D any](
	r *engine.RDD[instance.TimeSeries[[]instance.Trajectory[V, DT], D]],
	unit SpeedUnit,
) (instance.TimeSeries[float64, D], bool) {
	accs := MapTimeSeriesValue(r, func(trs []instance.Trajectory[V, DT]) MeanAcc {
		var a MeanAcc
		for _, tr := range trs {
			a = a.Add(tr.AvgSpeedMps())
		}
		return a
	})
	merged, ok := CollectAndMergeTimeSeries(accs, MeanAcc.Merge)
	if !ok {
		var zero instance.TimeSeries[float64, D]
		return zero, false
	}
	entries := make([]instance.Entry[geom.MBR, float64], len(merged.Entries))
	for i, e := range merged.Entries {
		entries[i] = instance.Entry[geom.MBR, float64]{
			Spatial: e.Spatial, Temporal: e.Temporal,
			Value: unit.Convert(e.Value.Mean()),
		}
	}
	return instance.TimeSeries[float64, D]{Entries: entries, Data: merged.Data}, true
}

// TsWindowFreq returns sliding-window sums of a count series: output[i] =
// sum of counts[i..i+window-1]. It panics for window < 1 and returns nil
// when the series is shorter than the window.
func TsWindowFreq[D any](ts instance.TimeSeries[int64, D], window int) []int64 {
	if window < 1 {
		panic("extract: window < 1")
	}
	n := ts.Len() - window + 1
	if n <= 0 {
		return nil
	}
	out := make([]int64, n)
	var sum int64
	for i := 0; i < window; i++ {
		sum += ts.Entries[i].Value
	}
	out[0] = sum
	for i := 1; i < n; i++ {
		sum += ts.Entries[i+window-1].Value - ts.Entries[i-1].Value
		out[i] = sum
	}
	return out
}

// SmFlow counts the objects in every spatial cell and merges partials —
// the regional-flow / POI-count application.
func SmFlow[S geom.Geometry, E, D any](
	r *engine.RDD[instance.SpatialMap[S, []E, D]],
) (instance.SpatialMap[S, int64, D], bool) {
	counts := MapSpatialMapValue(r, func(v []E) int64 { return int64(len(v)) })
	return CollectAndMergeSpatialMap(counts, func(a, b int64) int64 { return a + b })
}

// SmSpeed computes the mean trajectory speed per spatial cell — the
// grid-speed application of Table 7.
func SmSpeed[S geom.Geometry, V, DT, D any](
	r *engine.RDD[instance.SpatialMap[S, []instance.Trajectory[V, DT], D]],
	unit SpeedUnit,
) (instance.SpatialMap[S, float64, D], bool) {
	accs := MapSpatialMapValue(r, func(trs []instance.Trajectory[V, DT]) MeanAcc {
		var a MeanAcc
		for _, tr := range trs {
			a = a.Add(tr.AvgSpeedMps())
		}
		return a
	})
	merged, ok := CollectAndMergeSpatialMap(accs, MeanAcc.Merge)
	if !ok {
		var zero instance.SpatialMap[S, float64, D]
		return zero, false
	}
	entries := make([]instance.Entry[S, float64], len(merged.Entries))
	for i, e := range merged.Entries {
		entries[i] = instance.Entry[S, float64]{
			Spatial: e.Spatial, Temporal: e.Temporal,
			Value: unit.Convert(e.Value.Mean()),
		}
	}
	return instance.SpatialMap[S, float64, D]{Entries: entries, Data: merged.Data}, true
}

// RasterFlow counts objects per ST cell and merges partials.
func RasterFlow[S geom.Geometry, E, D any](
	r *engine.RDD[instance.Raster[S, []E, D]],
) (instance.Raster[S, int64, D], bool) {
	counts := MapRasterValue(r, func(v []E) int64 { return int64(len(v)) })
	return CollectAndMergeRaster(counts, func(a, b int64) int64 { return a + b })
}

// CellSpeed is one raster cell's traffic summary: how many vehicles
// appeared and their mean speed.
type CellSpeed struct {
	Count int64
	Mean  float64
}

// RasterSpeed computes per-ST-cell vehicle counts and mean speeds — the
// paper's running example (§3.4) and the case-study extraction of Fig. 9.
func RasterSpeed[S geom.Geometry, V, DT, D any](
	r *engine.RDD[instance.Raster[S, []instance.Trajectory[V, DT], D]],
	unit SpeedUnit,
) (instance.Raster[S, CellSpeed, D], bool) {
	accs := MapRasterValue(r, func(trs []instance.Trajectory[V, DT]) MeanAcc {
		var a MeanAcc
		for _, tr := range trs {
			a = a.Add(tr.AvgSpeedMps())
		}
		return a
	})
	merged, ok := CollectAndMergeRaster(accs, MeanAcc.Merge)
	if !ok {
		var zero instance.Raster[S, CellSpeed, D]
		return zero, false
	}
	entries := make([]instance.Entry[S, CellSpeed], len(merged.Entries))
	for i, e := range merged.Entries {
		entries[i] = instance.Entry[S, CellSpeed]{
			Spatial: e.Spatial, Temporal: e.Temporal,
			Value: CellSpeed{Count: e.Value.N, Mean: unit.Convert(e.Value.Mean())},
		}
	}
	return instance.Raster[S, CellSpeed, D]{Entries: entries, Data: merged.Data}, true
}

// SmTransit extracts per-cell in/out flows over a spatial grid: every
// consecutive trajectory point pair that changes cell contributes one exit
// to the source cell and one entry to the destination cell.
func SmTransit[V, D any](
	r *engine.RDD[instance.Trajectory[V, D]],
	grid instance.SpatialGrid,
) instance.SpatialMap[geom.MBR, InOut, instance.Unit] {
	n := grid.NumCells()
	flows := engine.Aggregate(r,
		nil,
		func(acc []InOut, tr instance.Trajectory[V, D]) []InOut {
			if acc == nil {
				acc = make([]InOut, n)
			}
			prev := -1
			for _, e := range tr.Entries {
				cell := grid.Locate(e.Spatial)
				if prev >= 0 && cell >= 0 && cell != prev {
					acc[prev].Out++
					acc[cell].In++
				}
				if cell >= 0 {
					prev = cell
				}
			}
			return acc
		},
		mergeInOut)
	if flows == nil {
		flows = make([]InOut, n)
	}
	return instance.NewSpatialMap(grid.Cells(), flows, instance.Unit{})
}

// RasterTransit extracts per-ST-cell in/out flows over a raster grid: a
// cell transition at time t contributes to the source and destination cells
// in t's slot — the transition application of Table 7.
func RasterTransit[V, D any](
	r *engine.RDD[instance.Trajectory[V, D]],
	grid instance.RasterGrid,
) instance.Raster[geom.MBR, InOut, instance.Unit] {
	n := grid.NumCells()
	per := grid.Space.NumCells()
	flows := engine.Aggregate(r,
		nil,
		func(acc []InOut, tr instance.Trajectory[V, D]) []InOut {
			if acc == nil {
				acc = make([]InOut, n)
			}
			prevCell, prevSlot := -1, -1
			for _, e := range tr.Entries {
				cell := grid.Space.Locate(e.Spatial)
				slotLo, slotHi, ok := grid.Time.SlotRange(e.Temporal)
				slot := -1
				if ok {
					slot = slotLo
					_ = slotHi
				}
				if prevCell >= 0 && cell >= 0 && slot >= 0 && cell != prevCell {
					acc[prevSlot*per+prevCell].Out++
					acc[slot*per+cell].In++
				}
				if cell >= 0 && slot >= 0 {
					prevCell, prevSlot = cell, slot
				}
			}
			return acc
		},
		mergeInOut)
	if flows == nil {
		flows = make([]InOut, n)
	}
	cells, slots := grid.Build()
	return instance.NewRaster(cells, slots, flows, instance.Unit{})
}

func mergeInOut(a, b []InOut) []InOut {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for i := range a {
		a[i] = a[i].Merge(b[i])
	}
	return a
}
