package extract

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

// Table 4 RDD-extension interfaces, one family per collective instance.
// They let application programmers write extraction logic against a single
// cell value (or a single instance) and leave the distributed execution to
// the engine.

// MapTimeSeriesValue maps every slot value of every time series in the RDD.
func MapTimeSeriesValue[V1, V2, D any](
	r *engine.RDD[instance.TimeSeries[V1, D]],
	f func(V1) V2,
) *engine.RDD[instance.TimeSeries[V2, D]] {
	return engine.Map(r, func(ts instance.TimeSeries[V1, D]) instance.TimeSeries[V2, D] {
		entries := make([]instance.Entry[geom.MBR, V2], len(ts.Entries))
		for i, e := range ts.Entries {
			entries[i] = instance.Entry[geom.MBR, V2]{
				Spatial: e.Spatial, Temporal: e.Temporal, Value: f(e.Value),
			}
		}
		return instance.TimeSeries[V2, D]{Entries: entries, Data: ts.Data}
	})
}

// MapTimeSeriesValuePlus is MapTimeSeriesValue with each slot's boundaries
// passed to f.
func MapTimeSeriesValuePlus[V1, V2, D any](
	r *engine.RDD[instance.TimeSeries[V1, D]],
	f func(V1, geom.MBR, tempo.Duration) V2,
) *engine.RDD[instance.TimeSeries[V2, D]] {
	return engine.Map(r, func(ts instance.TimeSeries[V1, D]) instance.TimeSeries[V2, D] {
		entries := make([]instance.Entry[geom.MBR, V2], len(ts.Entries))
		for i, e := range ts.Entries {
			entries[i] = instance.Entry[geom.MBR, V2]{
				Spatial: e.Spatial, Temporal: e.Temporal,
				Value: f(e.Value, e.Spatial, e.Temporal),
			}
		}
		return instance.TimeSeries[V2, D]{Entries: entries, Data: ts.Data}
	})
}

// MapSpatialMapValue maps every cell value of every spatial map in the RDD.
func MapSpatialMapValue[S geom.Geometry, V1, V2, D any](
	r *engine.RDD[instance.SpatialMap[S, V1, D]],
	f func(V1) V2,
) *engine.RDD[instance.SpatialMap[S, V2, D]] {
	return engine.Map(r, func(sm instance.SpatialMap[S, V1, D]) instance.SpatialMap[S, V2, D] {
		entries := make([]instance.Entry[S, V2], len(sm.Entries))
		for i, e := range sm.Entries {
			entries[i] = instance.Entry[S, V2]{
				Spatial: e.Spatial, Temporal: e.Temporal, Value: f(e.Value),
			}
		}
		return instance.SpatialMap[S, V2, D]{Entries: entries, Data: sm.Data}
	})
}

// MapSpatialMapValuePlus is MapSpatialMapValue with cell boundaries.
func MapSpatialMapValuePlus[S geom.Geometry, V1, V2, D any](
	r *engine.RDD[instance.SpatialMap[S, V1, D]],
	f func(V1, S, tempo.Duration) V2,
) *engine.RDD[instance.SpatialMap[S, V2, D]] {
	return engine.Map(r, func(sm instance.SpatialMap[S, V1, D]) instance.SpatialMap[S, V2, D] {
		entries := make([]instance.Entry[S, V2], len(sm.Entries))
		for i, e := range sm.Entries {
			entries[i] = instance.Entry[S, V2]{
				Spatial: e.Spatial, Temporal: e.Temporal,
				Value: f(e.Value, e.Spatial, e.Temporal),
			}
		}
		return instance.SpatialMap[S, V2, D]{Entries: entries, Data: sm.Data}
	})
}

// MapRasterValue maps every cell value of every raster in the RDD.
func MapRasterValue[S geom.Geometry, V1, V2, D any](
	r *engine.RDD[instance.Raster[S, V1, D]],
	f func(V1) V2,
) *engine.RDD[instance.Raster[S, V2, D]] {
	return engine.Map(r, func(ra instance.Raster[S, V1, D]) instance.Raster[S, V2, D] {
		entries := make([]instance.Entry[S, V2], len(ra.Entries))
		for i, e := range ra.Entries {
			entries[i] = instance.Entry[S, V2]{
				Spatial: e.Spatial, Temporal: e.Temporal, Value: f(e.Value),
			}
		}
		return instance.Raster[S, V2, D]{Entries: entries, Data: ra.Data}
	})
}

// MapRasterValuePlus is MapRasterValue with cell boundaries — the API of
// the paper's stay-point example (§3.3).
func MapRasterValuePlus[S geom.Geometry, V1, V2, D any](
	r *engine.RDD[instance.Raster[S, V1, D]],
	f func(V1, S, tempo.Duration) V2,
) *engine.RDD[instance.Raster[S, V2, D]] {
	return engine.Map(r, func(ra instance.Raster[S, V1, D]) instance.Raster[S, V2, D] {
		entries := make([]instance.Entry[S, V2], len(ra.Entries))
		for i, e := range ra.Entries {
			entries[i] = instance.Entry[S, V2]{
				Spatial: e.Spatial, Temporal: e.Temporal,
				Value: f(e.Value, e.Spatial, e.Temporal),
			}
		}
		return instance.Raster[S, V2, D]{Entries: entries, Data: ra.Data}
	})
}

// MapRasterData maps the instance-level data field of every raster.
func MapRasterData[S geom.Geometry, V, D1, D2 any](
	r *engine.RDD[instance.Raster[S, V, D1]],
	f func(D1) D2,
) *engine.RDD[instance.Raster[S, V, D2]] {
	return engine.Map(r, func(ra instance.Raster[S, V, D1]) instance.Raster[S, V, D2] {
		return instance.Raster[S, V, D2]{Entries: ra.Entries, Data: f(ra.Data)}
	})
}

// MapRasterDataPlus is MapRasterData with the collective structure's cell
// shapes and slots passed to f.
func MapRasterDataPlus[S geom.Geometry, V, D1, D2 any](
	r *engine.RDD[instance.Raster[S, V, D1]],
	f func(D1, []S, []tempo.Duration) D2,
) *engine.RDD[instance.Raster[S, V, D2]] {
	return engine.Map(r, func(ra instance.Raster[S, V, D1]) instance.Raster[S, V, D2] {
		shapes := make([]S, len(ra.Entries))
		slots := make([]tempo.Duration, len(ra.Entries))
		for i, e := range ra.Entries {
			shapes[i] = e.Spatial
			slots[i] = e.Temporal
		}
		return instance.Raster[S, V, D2]{Entries: ra.Entries, Data: f(ra.Data, shapes, slots)}
	})
}

// CollectAndMergeTimeSeries fetches the distributed partial time series and
// merges aligned slot values with f (Table 4's collectAndMerge). ok is
// false for an empty RDD. All partials must share the same slot structure,
// which the converters guarantee.
func CollectAndMergeTimeSeries[V, D any](
	r *engine.RDD[instance.TimeSeries[V, D]],
	f func(V, V) V,
) (instance.TimeSeries[V, D], bool) {
	parts := r.Collect()
	if len(parts) == 0 {
		var zero instance.TimeSeries[V, D]
		return zero, false
	}
	out := parts[0]
	entries := make([]instance.Entry[geom.MBR, V], len(out.Entries))
	copy(entries, out.Entries)
	out.Entries = entries
	for _, p := range parts[1:] {
		for i := range out.Entries {
			out.Entries[i].Value = f(out.Entries[i].Value, p.Entries[i].Value)
		}
	}
	return out, true
}

// CollectAndMergeSpatialMap merges distributed partial spatial maps.
func CollectAndMergeSpatialMap[S geom.Geometry, V, D any](
	r *engine.RDD[instance.SpatialMap[S, V, D]],
	f func(V, V) V,
) (instance.SpatialMap[S, V, D], bool) {
	parts := r.Collect()
	if len(parts) == 0 {
		var zero instance.SpatialMap[S, V, D]
		return zero, false
	}
	out := parts[0]
	entries := make([]instance.Entry[S, V], len(out.Entries))
	copy(entries, out.Entries)
	out.Entries = entries
	for _, p := range parts[1:] {
		for i := range out.Entries {
			out.Entries[i].Value = f(out.Entries[i].Value, p.Entries[i].Value)
		}
	}
	return out, true
}

// CollectAndMergeRaster merges distributed partial rasters.
func CollectAndMergeRaster[S geom.Geometry, V, D any](
	r *engine.RDD[instance.Raster[S, V, D]],
	f func(V, V) V,
) (instance.Raster[S, V, D], bool) {
	parts := r.Collect()
	if len(parts) == 0 {
		var zero instance.Raster[S, V, D]
		return zero, false
	}
	out := parts[0]
	entries := make([]instance.Entry[S, V], len(out.Entries))
	copy(entries, out.Entries)
	out.Entries = entries
	for _, p := range parts[1:] {
		for i := range out.Entries {
			out.Entries[i].Value = f(out.Entries[i].Value, p.Entries[i].Value)
		}
	}
	return out, true
}
