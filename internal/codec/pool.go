package codec

import "sync"

// Buffer pools shared by the codec's callers — the storage block
// writer/reader, the engine's shuffle scratch, and anything else that
// encodes or decompresses in a hot loop. Pooling turns the per-call
// allocations of those paths into amortized reuse; ownership is strict:
// a Get hands the caller exclusive use, a Put ends it, and nothing the
// caller retains may alias the pooled memory afterwards.

// maxPooledWriterCap bounds the capacity a Writer may keep when returned
// to the pool. Occasional jumbo encodings (a multi-megabyte shuffle
// buffer) would otherwise pin their peak footprint forever.
const maxPooledWriterCap = 1 << 20

// maxPooledBufCap is the same bound for raw byte buffers, sized for the
// storage layer's block payloads (blocks are ~tens of KiB; a whole legacy
// partition can be a few MiB).
const maxPooledBufCap = 8 << 20

var writerPool = sync.Pool{
	New: func() any { return &Writer{buf: make([]byte, 0, 4096)} },
}

// GetWriter returns an empty Writer from the pool. Pair with PutWriter
// once every byte the caller needs has been copied out — Bytes() aliases
// the pooled buffer.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns w to the pool. Oversized buffers are dropped so a one-off
// giant encoding does not stay resident. Nil is accepted and ignored.
func PutWriter(w *Writer) {
	if w == nil || cap(w.buf) > maxPooledWriterCap {
		return
	}
	writerPool.Put(w)
}

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// GetBuf returns a byte slice of length n from the pool, growing the pooled
// allocation when it is too small. Contents are unspecified; callers
// overwrite before reading. Pair with PutBuf.
func GetBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return (*bp)[:n]
}

// PutBuf returns a slice obtained from GetBuf to the pool. Slices the
// caller did not get from GetBuf are accepted too (they seed the pool),
// but oversized ones are dropped.
func PutBuf(b []byte) {
	if b == nil || cap(b) > maxPooledBufCap {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
