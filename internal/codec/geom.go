package codec

import (
	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

// Codecs for the geometry and temporal primitives. These are the leaf
// encoders that instance- and record-level codecs compose.

// PointC encodes a geom.Point as two fixed float64s.
var PointC = Codec[geom.Point]{
	Enc: func(w *Writer, p geom.Point) {
		w.PutFloat64(p.X)
		w.PutFloat64(p.Y)
	},
	Dec: func(r *Reader) geom.Point {
		return geom.Point{X: r.Float64(), Y: r.Float64()}
	},
}

// MBRC encodes a geom.MBR as four fixed float64s.
var MBRC = Codec[geom.MBR]{
	Enc: func(w *Writer, b geom.MBR) {
		w.PutFloat64(b.MinX)
		w.PutFloat64(b.MinY)
		w.PutFloat64(b.MaxX)
		w.PutFloat64(b.MaxY)
	},
	Dec: func(r *Reader) geom.MBR {
		return geom.MBR{MinX: r.Float64(), MinY: r.Float64(), MaxX: r.Float64(), MaxY: r.Float64()}
	},
}

// DurationC encodes a tempo.Duration as two varints.
var DurationC = Codec[tempo.Duration]{
	Enc: func(w *Writer, d tempo.Duration) {
		w.PutVarint(d.Start)
		w.PutVarint(d.End)
	},
	Dec: func(r *Reader) tempo.Duration {
		return tempo.Duration{Start: r.Varint(), End: r.Varint()}
	},
}

// LineStringC encodes a *geom.LineString as a length-prefixed point list.
var LineStringC = Codec[*geom.LineString]{
	Enc: func(w *Writer, l *geom.LineString) {
		pts := l.Points()
		w.PutUvarint(uint64(len(pts)))
		for _, p := range pts {
			w.PutFloat64(p.X)
			w.PutFloat64(p.Y)
		}
	},
	Dec: func(r *Reader) *geom.LineString {
		n := int(r.Uvarint())
		pts := make([]geom.Point, n)
		for i := 0; i < n; i++ {
			pts[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
		}
		return geom.NewLineString(pts)
	},
}

// PolygonC encodes a *geom.Polygon as its exterior ring plus holes.
var PolygonC = Codec[*geom.Polygon]{
	Enc: func(w *Writer, pg *geom.Polygon) {
		encodeRing(w, pg.Exterior())
		w.PutUvarint(uint64(pg.NumHoles()))
		for i := 0; i < pg.NumHoles(); i++ {
			encodeRing(w, pg.Hole(i))
		}
	},
	Dec: func(r *Reader) *geom.Polygon {
		ext := decodeRing(r)
		n := int(r.Uvarint())
		holes := make([][]geom.Point, n)
		for i := 0; i < n; i++ {
			holes[i] = decodeRing(r)
		}
		return geom.NewPolygon(ext, holes...)
	},
}

func encodeRing(w *Writer, ring []geom.Point) {
	w.PutUvarint(uint64(len(ring)))
	for _, p := range ring {
		w.PutFloat64(p.X)
		w.PutFloat64(p.Y)
	}
}

func decodeRing(r *Reader) []geom.Point {
	n := int(r.Uvarint())
	ring := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		ring[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
	}
	return ring
}
