// Package codec implements the compact binary serialization used by the
// engine's shuffles and the on-disk store. Spark pays a real CPU cost to
// serialize every shuffled record; charging the same cost here is what makes
// the engine an honest stand-in — ST4ML's shuffle-avoiding designs win for
// the same reason they win on Spark.
//
// A Codec[T] is a pair of encode/decode functions over a byte buffer.
// Codecs compose: PairOf, SliceOf, MapOf, and OptionOf build codecs for
// aggregate types from element codecs, and domain packages (geom, instance)
// export codecs for their types.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer accumulates encoded bytes.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer { return &Writer{buf: make([]byte, 0, capacity)} }

// Bytes returns the accumulated encoding. The slice aliases the writer's
// buffer and is invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer for reuse, keeping the allocation.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// PutUvarint appends v in unsigned varint encoding.
func (w *Writer) PutUvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// PutVarint appends v in zig-zag varint encoding.
func (w *Writer) PutVarint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// PutFloat64 appends v as 8 little-endian bytes.
func (w *Writer) PutFloat64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// PutBool appends a single 0/1 byte.
func (w *Writer) PutBool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// PutString appends a length-prefixed UTF-8 string.
func (w *Writer) PutString(s string) {
	w.PutUvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// PutBytes appends a length-prefixed byte slice.
func (w *Writer) PutBytes(b []byte) {
	w.PutUvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// PutRaw appends b verbatim, with no length prefix. Callers use it to move
// already-encoded records between buffers.
func (w *Writer) PutRaw(b []byte) { w.buf = append(w.buf, b...) }

// Write implements io.Writer, appending p verbatim — so a Writer can sit
// directly under a compressor (the storage layer's per-block gzip).
func (w *Writer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Reader decodes values from a byte slice. Decoding past the end or reading
// malformed data panics with ErrCorrupt; the engine recovers panics at task
// boundaries, and the store converts them to errors via Catch.
type Reader struct {
	b   []byte
	off int
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// ResetBytes repoints the reader at b, rewound to the start. Hot decode
// loops (one payload span per record) reuse a single Reader this way
// instead of allocating one per record.
func (r *Reader) ResetBytes(b []byte) {
	r.b = b
	r.off = 0
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// ErrCorrupt is the panic value raised on malformed input.
type ErrCorrupt struct{ Off int }

func (e ErrCorrupt) Error() string { return fmt.Sprintf("codec: corrupt data at offset %d", e.Off) }

func (r *Reader) corrupt() { panic(ErrCorrupt{Off: r.off}) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.corrupt()
	}
	r.off += n
	return v
}

// Varint reads a zig-zag varint.
func (r *Reader) Varint() int64 {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.corrupt()
	}
	r.off += n
	return v
}

// Float64 reads 8 little-endian bytes as a float64.
func (r *Reader) Float64() float64 {
	if r.off+8 > len(r.b) {
		r.corrupt()
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// Bool reads a 0/1 byte.
func (r *Reader) Bool() bool {
	if r.off >= len(r.b) {
		r.corrupt()
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		r.corrupt()
	}
	return v == 1
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.Uvarint())
	if n < 0 || r.off+n > len(r.b) {
		r.corrupt()
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Bytes reads a length-prefixed byte slice (copied, safe to retain).
func (r *Reader) Bytes() []byte {
	n := int(r.Uvarint())
	if n < 0 || r.off+n > len(r.b) {
		r.corrupt()
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

// Codec serializes values of type T.
type Codec[T any] struct {
	Enc func(w *Writer, v T)
	Dec func(r *Reader) T
	// Col, when non-nil, is the record type's columnar decomposition: it
	// lets the storage layer lay blocks out struct-of-arrays (format v3)
	// instead of row-wise. Codecs without one still work everywhere — v3
	// files then fall back to a generic row-payload layout.
	Col *Columnar[T]
}

// Marshal encodes v into a fresh byte slice.
func Marshal[T any](c Codec[T], v T) []byte {
	w := NewWriter(64)
	c.Enc(w, v)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// Unmarshal decodes a value encoded by Marshal. The error reports
// corruption or trailing garbage.
func Unmarshal[T any](c Codec[T], b []byte) (v T, err error) {
	err = Catch(func() {
		r := NewReader(b)
		v = c.Dec(r)
		if r.Remaining() != 0 {
			panic(ErrCorrupt{Off: r.off})
		}
	})
	return v, err
}

// Catch runs fn, converting an ErrCorrupt panic into an error. Other panics
// propagate.
func Catch(fn func()) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if ce, ok := rec.(ErrCorrupt); ok {
				err = ce
				return
			}
			panic(rec)
		}
	}()
	fn()
	return nil
}

// Primitive codecs.
var (
	// Int64 encodes int64 as zig-zag varints.
	Int64 = Codec[int64]{
		Enc: func(w *Writer, v int64) { w.PutVarint(v) },
		Dec: func(r *Reader) int64 { return r.Varint() },
	}
	// Int encodes int as zig-zag varints.
	Int = Codec[int]{
		Enc: func(w *Writer, v int) { w.PutVarint(int64(v)) },
		Dec: func(r *Reader) int { return int(r.Varint()) },
	}
	// Uint64 encodes uint64 as unsigned varints.
	Uint64 = Codec[uint64]{
		Enc: func(w *Writer, v uint64) { w.PutUvarint(v) },
		Dec: func(r *Reader) uint64 { return r.Uvarint() },
	}
	// Float64 encodes float64 as fixed 8 bytes.
	Float64 = Codec[float64]{
		Enc: func(w *Writer, v float64) { w.PutFloat64(v) },
		Dec: func(r *Reader) float64 { return r.Float64() },
	}
	// String encodes length-prefixed strings.
	String = Codec[string]{
		Enc: func(w *Writer, v string) { w.PutString(v) },
		Dec: func(r *Reader) string { return r.String() },
	}
	// Bool encodes a single byte.
	Bool = Codec[bool]{
		Enc: func(w *Writer, v bool) { w.PutBool(v) },
		Dec: func(r *Reader) bool { return r.Bool() },
	}
	// ByteSlice encodes length-prefixed raw bytes.
	ByteSlice = Codec[[]byte]{
		Enc: func(w *Writer, v []byte) { w.PutBytes(v) },
		Dec: func(r *Reader) []byte { return r.Bytes() },
	}
)

// Pair is a generic 2-tuple, the record type of keyed shuffles.
type Pair[K, V any] struct {
	Key   K
	Value V
}

// KV is a convenience constructor for Pair.
func KV[K, V any](k K, v V) Pair[K, V] { return Pair[K, V]{Key: k, Value: v} }

// PairOf builds a codec for Pair[K, V] from element codecs.
func PairOf[K, V any](kc Codec[K], vc Codec[V]) Codec[Pair[K, V]] {
	return Codec[Pair[K, V]]{
		Enc: func(w *Writer, p Pair[K, V]) {
			kc.Enc(w, p.Key)
			vc.Enc(w, p.Value)
		},
		Dec: func(r *Reader) Pair[K, V] {
			return Pair[K, V]{Key: kc.Dec(r), Value: vc.Dec(r)}
		},
	}
}

// SliceOf builds a codec for []T from an element codec. Nil decodes from
// length 0 as an empty non-nil slice.
func SliceOf[T any](c Codec[T]) Codec[[]T] {
	return Codec[[]T]{
		Enc: func(w *Writer, vs []T) {
			w.PutUvarint(uint64(len(vs)))
			for _, v := range vs {
				c.Enc(w, v)
			}
		},
		Dec: func(r *Reader) []T {
			n := int(r.Uvarint())
			out := make([]T, n)
			for i := 0; i < n; i++ {
				out[i] = c.Dec(r)
			}
			return out
		},
	}
}

// MapOf builds a codec for map[K]V. Iteration order is randomized by Go, so
// encodings of equal maps may differ; decode produces an equal map.
func MapOf[K comparable, V any](kc Codec[K], vc Codec[V]) Codec[map[K]V] {
	return Codec[map[K]V]{
		Enc: func(w *Writer, m map[K]V) {
			w.PutUvarint(uint64(len(m)))
			for k, v := range m {
				kc.Enc(w, k)
				vc.Enc(w, v)
			}
		},
		Dec: func(r *Reader) map[K]V {
			n := int(r.Uvarint())
			m := make(map[K]V, n)
			for i := 0; i < n; i++ {
				k := kc.Dec(r)
				m[k] = vc.Dec(r)
			}
			return m
		},
	}
}

// OptionOf builds a codec for pointers, encoding nil as absent.
func OptionOf[T any](c Codec[T]) Codec[*T] {
	return Codec[*T]{
		Enc: func(w *Writer, v *T) {
			if v == nil {
				w.PutBool(false)
				return
			}
			w.PutBool(true)
			c.Enc(w, *v)
		},
		Dec: func(r *Reader) *T {
			if !r.Bool() {
				return nil
			}
			v := c.Dec(r)
			return &v
		},
	}
}

// StringMap is a codec for map[string]string, the auxiliary-attribute bag
// carried by dataset records.
var StringMap = MapOf(String, String)
