package codec

import (
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB, 0x01}, 5000)}
	w := NewWriter(64)
	for _, p := range payloads {
		w.PutFrame(p)
	}
	r := NewReader(w.Bytes())
	for i, p := range payloads {
		got := r.Frame()
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("trailing bytes: %d", r.Remaining())
	}
}

func TestFrameDetectsEveryBitFlip(t *testing.T) {
	w := NewWriter(64)
	w.PutFrame([]byte("spatio-temporal"))
	good := w.Bytes()
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		err := Catch(func() {
			r := NewReader(bad)
			payload := r.Frame()
			// A flip in the length prefix can still yield a frame that
			// parses; the checksum must then reject the payload.
			if string(payload) == "spatio-temporal" && r.Remaining() == 0 {
				t.Fatalf("byte %d: corruption not detected", i)
			}
			panic(ErrCorrupt{})
		})
		if err == nil {
			t.Fatalf("byte %d: no error", i)
		}
	}
}

func TestFrameTruncated(t *testing.T) {
	w := NewWriter(64)
	w.PutFrame([]byte("hello world"))
	b := w.Bytes()
	for _, cut := range []int{1, 4, len(b) - 1} {
		err := Catch(func() {
			NewReader(b[:cut]).Frame()
		})
		if err == nil {
			t.Fatalf("cut at %d: truncation not detected", cut)
		}
	}
}
