package codec

import (
	"encoding/binary"
	"hash/crc32"
)

// Frames give byte blocks an integrity envelope: a length prefix plus a
// CRC32-C checksum over the payload. The engine frames every shuffle block
// and the storage layer frames every flushed record chunk, so a flipped bit
// anywhere in transit or at rest surfaces as ErrCorrupt instead of being
// silently decoded into garbage records.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C checksum of b, the frame checksum function.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// PutFrame appends payload wrapped in a length+checksum frame:
// uvarint(len(payload)), 4-byte little-endian CRC32-C, payload bytes.
func (w *Writer) PutFrame(payload []byte) {
	w.PutUvarint(uint64(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, Checksum(payload))
	w.buf = append(w.buf, payload...)
}

// Frame reads a frame written by PutFrame, verifies its checksum, and
// returns the payload. The slice aliases the reader's buffer. A bad length,
// truncated payload, or checksum mismatch panics with ErrCorrupt (convert
// with Catch).
func (r *Reader) Frame() []byte {
	n := int(r.Uvarint())
	if n < 0 || r.off+4+n > len(r.b) {
		r.corrupt()
	}
	sum := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	payload := r.b[r.off : r.off+n]
	if Checksum(payload) != sum {
		r.corrupt()
	}
	r.off += n
	return payload
}
