package codec

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip[T any](t *testing.T, c Codec[T], v T) T {
	t.Helper()
	got, err := Unmarshal(c, Marshal(c, v))
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", v, err)
	}
	return got
}

func TestPrimitiveRoundTrips(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 123456789} {
		if got := roundTrip(t, Int64, v); got != v {
			t.Errorf("int64 %d -> %d", v, got)
		}
	}
	for _, v := range []float64{0, -0.5, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		if got := roundTrip(t, Float64, v); got != v {
			t.Errorf("float64 %g -> %g", v, got)
		}
	}
	if got := roundTrip(t, Float64, math.NaN()); !math.IsNaN(got) {
		t.Errorf("NaN -> %g", got)
	}
	for _, v := range []string{"", "hello", "ünïcødé 漢字", string([]byte{0, 1, 255})} {
		if got := roundTrip(t, String, v); got != v {
			t.Errorf("string %q -> %q", v, got)
		}
	}
	for _, v := range []bool{true, false} {
		if got := roundTrip(t, Bool, v); got != v {
			t.Errorf("bool %v -> %v", v, got)
		}
	}
	if got := roundTrip(t, Uint64, uint64(math.MaxUint64)); got != math.MaxUint64 {
		t.Errorf("uint64 max -> %d", got)
	}
	b := []byte{1, 2, 3}
	if got := roundTrip(t, ByteSlice, b); !reflect.DeepEqual(got, b) {
		t.Errorf("bytes %v -> %v", b, got)
	}
}

func TestCompositeRoundTrips(t *testing.T) {
	pc := PairOf(String, Int64)
	p := KV("speed", int64(88))
	if got := roundTrip(t, pc, p); got != p {
		t.Errorf("pair %v -> %v", p, got)
	}

	sc := SliceOf(Int)
	s := []int{5, -3, 0, 999}
	if got := roundTrip(t, sc, s); !reflect.DeepEqual(got, s) {
		t.Errorf("slice %v -> %v", s, got)
	}
	if got := roundTrip(t, sc, []int{}); len(got) != 0 {
		t.Errorf("empty slice -> %v", got)
	}

	mc := MapOf(String, Float64)
	m := map[string]float64{"a": 1.5, "b": -2}
	if got := roundTrip(t, mc, m); !reflect.DeepEqual(got, m) {
		t.Errorf("map %v -> %v", m, got)
	}

	oc := OptionOf(String)
	v := "present"
	if got := roundTrip(t, oc, &v); got == nil || *got != v {
		t.Errorf("option -> %v", got)
	}
	if got := roundTrip(t, oc, nil); got != nil {
		t.Errorf("nil option -> %v", got)
	}
}

func TestNestedComposite(t *testing.T) {
	c := SliceOf(PairOf(String, SliceOf(Float64)))
	v := []Pair[string, []float64]{
		KV("xs", []float64{1, 2, 3}),
		KV("ys", []float64{}),
	}
	got := roundTrip(t, c, v)
	if len(got) != 2 || got[0].Key != "xs" || !reflect.DeepEqual(got[0].Value, []float64{1, 2, 3}) {
		t.Errorf("nested -> %v", got)
	}
}

func TestUnmarshalTrailingGarbage(t *testing.T) {
	b := append(Marshal(Int64, 7), 0xFF)
	if _, err := Unmarshal(Int64, b); err == nil {
		t.Error("trailing garbage should error")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	b := Marshal(String, "hello world")
	if _, err := Unmarshal(String, b[:3]); err == nil {
		t.Error("truncated input should error")
	}
	if _, err := Unmarshal(Float64, []byte{1, 2}); err == nil {
		t.Error("short float should error")
	}
	if _, err := Unmarshal(Bool, []byte{7}); err == nil {
		t.Error("invalid bool should error")
	}
	if _, err := Unmarshal(Bool, nil); err == nil {
		t.Error("empty bool should error")
	}
}

func TestWriterReuse(t *testing.T) {
	w := NewWriter(16)
	w.PutString("first")
	w.Reset()
	w.PutVarint(42)
	r := NewReader(w.Bytes())
	if got := r.Varint(); got != 42 {
		t.Errorf("after reset: %d", got)
	}
	if r.Remaining() != 0 {
		t.Error("leftover bytes after reset-reuse")
	}
}

func TestStreamedValues(t *testing.T) {
	// Multiple values written back to back decode in order.
	w := NewWriter(64)
	Int64.Enc(w, 1)
	String.Enc(w, "mid")
	Float64.Enc(w, 2.5)
	r := NewReader(w.Bytes())
	if Int64.Dec(r) != 1 || String.Dec(r) != "mid" || Float64.Dec(r) != 2.5 {
		t.Error("streamed decode mismatch")
	}
	if r.Remaining() != 0 {
		t.Error("stream should be fully consumed")
	}
}

func TestQuickInt64(t *testing.T) {
	f := func(v int64) bool {
		got, err := Unmarshal(Int64, Marshal(Int64, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickString(t *testing.T) {
	f := func(v string) bool {
		got, err := Unmarshal(String, Marshal(String, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickPairSlice(t *testing.T) {
	c := SliceOf(PairOf(Int64, String))
	f := func(ks []int64, vs []string) bool {
		n := len(ks)
		if len(vs) < n {
			n = len(vs)
		}
		in := make([]Pair[int64, string], n)
		for i := 0; i < n; i++ {
			in[i] = KV(ks[i], vs[i])
		}
		got, err := Unmarshal(c, Marshal(c, in))
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCatchPassesThroughOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-codec panic should propagate")
		}
	}()
	_ = Catch(func() { panic("boom") })
}
