package codec

import (
	"encoding/binary"
	"math"
	"sync"
)

// Column codecs for the storage layer's v3 block format: each block is
// decomposed struct-of-arrays into independent column streams (ids, lon,
// lat, t, optional string attribute, residual payload), and every column
// picks the cheapest encoding its values admit. Z-order-clustered ST
// records make neighboring values near-equal, so delta + zigzag varints
// shrink them far below gzip at a fraction of the decode cost — the
// "cheap ST-native compression" the ROADMAP calls for.
//
// A column payload is: one mode byte, then mode-specific data. Modes:
//
//	const  — every value equal; one value stored.
//	delta  — first value, then zigzag varints of successive differences
//	         (two's-complement wrapping, so any int64 sequence round-trips).
//	quant  — floats sitting on a decimal grid: a scale exponent, then the
//	         delta stream of the scaled integers. Chosen only when every
//	         value survives a bit-exact round trip (so -0.0, NaN and
//	         off-grid values fall through).
//	bits   — float64 bit patterns delta-encoded as varints; bit-exact for
//	         any input including NaN payloads and infinities.
//	dict   — low-cardinality strings: the dictionary in first-appearance
//	         order, then one uvarint index per value.
//	plain  — length-prefixed strings back to back.
//
// Decoders validate everything (mode bytes, scale exponents, dictionary
// indexes, exact payload consumption) and panic ErrCorrupt on any
// violation; callers run under Catch. Integrity framing (PutFrame) is the
// storage layer's job — one frame per column stream.

// Column mode bytes.
const (
	colConst byte = iota
	colDelta
	colQuant
	colBits
	colDict
	colPlain
)

// MaxColumnValues caps the value count a single column (and hence a v3
// block) may carry. Real blocks hold a few thousand records; the cap
// stops a corrupt or adversarial count from driving allocation.
const MaxColumnValues = 1 << 22

// maxDictSize bounds dictionary cardinality; beyond it plain encoding is
// at least as compact and far simpler.
const maxDictSize = 255

// colCheckN validates a decode-side value count.
func colCheckN(n int) {
	if n < 0 || n > MaxColumnValues {
		panic(ErrCorrupt{Off: 0})
	}
}

// colByte reads a column mode (or scale) byte.
func (r *Reader) colByte() byte {
	if r.off >= len(r.b) {
		r.corrupt()
	}
	v := r.b[r.off]
	r.off++
	return v
}

// PutInt64Col appends the column encoding of vals. An empty column
// encodes to zero bytes.
func (w *Writer) PutInt64Col(vals []int64) {
	if len(vals) == 0 {
		return
	}
	allEq := true
	for _, v := range vals[1:] {
		if v != vals[0] {
			allEq = false
			break
		}
	}
	if allEq {
		w.buf = append(w.buf, colConst)
		w.PutVarint(vals[0])
		return
	}
	w.buf = append(w.buf, colDelta)
	w.PutVarint(vals[0])
	prev := vals[0]
	for _, v := range vals[1:] {
		// Go's signed subtraction wraps two's-complement, so the delta
		// stream round-trips even across int64 overflow.
		w.PutVarint(v - prev)
		prev = v
	}
}

// Int64Col decodes a column of n int64s from payload (a full column
// stream, typically one verified frame), appending into dst's capacity.
// Malformed input — bad mode, short data, trailing bytes — panics
// ErrCorrupt.
func Int64Col(payload []byte, n int, dst []int64) []int64 {
	colCheckN(n)
	out := dst[:0]
	if n == 0 {
		if len(payload) != 0 {
			panic(ErrCorrupt{Off: 0})
		}
		return out
	}
	r := NewReader(payload)
	switch r.colByte() {
	case colConst:
		v := r.Varint()
		for i := 0; i < n; i++ {
			out = append(out, v)
		}
	case colDelta:
		v := r.Varint()
		out = append(out, v)
		for i := 1; i < n; i++ {
			v += r.Varint()
			out = append(out, v)
		}
	default:
		panic(ErrCorrupt{Off: 0})
	}
	if r.Remaining() != 0 {
		r.corrupt()
	}
	return out
}

// pow10 are the decimal grids the quant mode probes, up to 1e-7 — finer
// than any GPS fix; coordinates beyond that precision fall to bits mode.
var pow10 = [...]float64{1, 10, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7}

// maxQuantMagnitude bounds the scaled integers so they stay exactly
// representable in a float64 during the round-trip check.
const maxQuantMagnitude = 1 << 52

// quantScale returns the smallest decimal scale exponent under which
// every value round-trips bit-exactly through its scaled integer, or
// ok=false when no grid fits (off-grid values, NaN, ±Inf, -0.0).
func quantScale(vals []float64) (byte, bool) {
outer:
	for e := range pow10 {
		s := pow10[e]
		for _, v := range vals {
			q := math.Round(v * s)
			if math.IsNaN(q) || q < -maxQuantMagnitude || q > maxQuantMagnitude {
				continue outer
			}
			// The decoder computes float64(int64)/s, so the check must go
			// through the integer too: it catches -0.0 (int 0 decodes to
			// +0.0) as well as off-grid values.
			if math.Float64bits(float64(int64(q))/s) != math.Float64bits(v) {
				continue outer
			}
		}
		return byte(e), true
	}
	return 0, false
}

// PutFloat64Col appends the column encoding of vals: const when uniform,
// quant when a decimal grid reproduces every bit, bit-pattern deltas
// otherwise. All three are bit-exact.
func (w *Writer) PutFloat64Col(vals []float64) {
	if len(vals) == 0 {
		return
	}
	bits0 := math.Float64bits(vals[0])
	allEq := true
	for _, v := range vals[1:] {
		if math.Float64bits(v) != bits0 {
			allEq = false
			break
		}
	}
	if allEq {
		w.buf = append(w.buf, colConst)
		w.PutFloat64(vals[0])
		return
	}
	if e, ok := quantScale(vals); ok {
		w.buf = append(w.buf, colQuant, e)
		s := pow10[e]
		prev := int64(0)
		for i, v := range vals {
			q := int64(math.Round(v * s))
			if i == 0 {
				w.PutVarint(q)
			} else {
				w.PutVarint(q - prev)
			}
			prev = q
		}
		return
	}
	w.buf = append(w.buf, colBits)
	prev := uint64(0)
	for i, v := range vals {
		b := math.Float64bits(v)
		if i == 0 {
			w.buf = binary.LittleEndian.AppendUint64(w.buf, b)
		} else {
			w.PutVarint(int64(b - prev))
		}
		prev = b
	}
}

// Float64Col decodes a column of n float64s from payload, appending into
// dst's capacity. Panics ErrCorrupt on malformed input.
func Float64Col(payload []byte, n int, dst []float64) []float64 {
	colCheckN(n)
	out := dst[:0]
	if n == 0 {
		if len(payload) != 0 {
			panic(ErrCorrupt{Off: 0})
		}
		return out
	}
	r := NewReader(payload)
	switch r.colByte() {
	case colConst:
		v := r.Float64()
		for i := 0; i < n; i++ {
			out = append(out, v)
		}
	case colQuant:
		e := r.colByte()
		if int(e) >= len(pow10) {
			r.corrupt()
		}
		s := pow10[e]
		q := r.Varint()
		out = append(out, float64(q)/s)
		for i := 1; i < n; i++ {
			q += r.Varint()
			out = append(out, float64(q)/s)
		}
	case colBits:
		b := math.Float64bits(r.Float64())
		out = append(out, math.Float64frombits(b))
		for i := 1; i < n; i++ {
			b += uint64(r.Varint())
			out = append(out, math.Float64frombits(b))
		}
	default:
		panic(ErrCorrupt{Off: 0})
	}
	if r.Remaining() != 0 {
		r.corrupt()
	}
	return out
}

// PutStringCol appends the column encoding of vals: const when uniform,
// dictionary-coded when cardinality is low, plain otherwise.
func (w *Writer) PutStringCol(vals []string) {
	if len(vals) == 0 {
		return
	}
	allEq := true
	for _, v := range vals[1:] {
		if v != vals[0] {
			allEq = false
			break
		}
	}
	if allEq {
		w.buf = append(w.buf, colConst)
		w.PutString(vals[0])
		return
	}
	idx := make(map[string]int, 16)
	var dict []string
	for _, s := range vals {
		if _, ok := idx[s]; !ok {
			if len(dict) >= maxDictSize {
				dict = nil
				break
			}
			idx[s] = len(dict)
			dict = append(dict, s)
		}
	}
	if dict != nil && len(dict) < len(vals) {
		w.buf = append(w.buf, colDict)
		w.PutUvarint(uint64(len(dict)))
		for _, s := range dict {
			w.PutString(s)
		}
		for _, s := range vals {
			w.PutUvarint(uint64(idx[s]))
		}
		return
	}
	w.buf = append(w.buf, colPlain)
	for _, s := range vals {
		w.PutString(s)
	}
}

// StringCol decodes a column of n strings from payload, appending into
// dst's capacity. Panics ErrCorrupt on malformed input, including
// out-of-range dictionary indexes.
func StringCol(payload []byte, n int, dst []string) []string {
	colCheckN(n)
	out := dst[:0]
	if n == 0 {
		if len(payload) != 0 {
			panic(ErrCorrupt{Off: 0})
		}
		return out
	}
	r := NewReader(payload)
	switch r.colByte() {
	case colConst:
		v := r.String()
		for i := 0; i < n; i++ {
			out = append(out, v)
		}
	case colDict:
		dn := int(r.Uvarint())
		if dn <= 0 || dn > maxDictSize {
			r.corrupt()
		}
		dict := make([]string, dn)
		for i := range dict {
			dict[i] = r.String()
		}
		for i := 0; i < n; i++ {
			di := r.Uvarint()
			if di >= uint64(dn) {
				r.corrupt()
			}
			out = append(out, dict[di])
		}
	case colPlain:
		for i := 0; i < n; i++ {
			out = append(out, r.String())
		}
	default:
		panic(ErrCorrupt{Off: 0})
	}
	if r.Remaining() != 0 {
		r.corrupt()
	}
	return out
}

// ColBlock is the struct-of-arrays decomposition of one block of records:
// the shared columns every ST schema has (id, lon, lat, t, one optional
// string attribute) plus a residual payload stream holding whatever a
// schema encodes beyond them. A writer fills it via Columnar.Split and
// EndRecord; a reader rebuilds records via Columnar.Join.
type ColBlock struct {
	IDs      []int64
	Lon, Lat []float64
	T        []int64
	Str      []string
	// PayLen[i] is the byte length of record i's span in the payload
	// stream (write side: closed by EndRecord; read side: decoded).
	PayLen []int64
	// Pay accumulates the residual payload stream on the write side.
	Pay Writer
	// payMark is where the current record's payload span began.
	payMark int
	// payBytes/payOff are the read side: the payload stream and the
	// prefix offsets of each record's span within it.
	payBytes []byte
	payOff   []int64
}

// Reset clears the block for reuse, keeping allocations.
func (b *ColBlock) Reset() {
	b.IDs = b.IDs[:0]
	b.Lon = b.Lon[:0]
	b.Lat = b.Lat[:0]
	b.T = b.T[:0]
	b.Str = b.Str[:0]
	b.PayLen = b.PayLen[:0]
	b.Pay.Reset()
	b.payMark = 0
	b.payBytes = nil
	b.payOff = b.payOff[:0]
}

// EndRecord closes the current record's payload span: everything written
// to Pay since the previous EndRecord belongs to it.
func (b *ColBlock) EndRecord() {
	b.PayLen = append(b.PayLen, int64(b.Pay.Len()-b.payMark))
	b.payMark = b.Pay.Len()
}

// SetPayload installs the read-side payload stream and its decoded span
// lengths, validating that the spans exactly tile the stream. Panics
// ErrCorrupt when they do not.
func (b *ColBlock) SetPayload(stream []byte, lens []int64) {
	b.payOff = b.payOff[:0]
	off := int64(0)
	b.payOff = append(b.payOff, 0)
	for _, l := range lens {
		if l < 0 || off+l > int64(len(stream)) {
			panic(ErrCorrupt{Off: int(off)})
		}
		off += l
		b.payOff = append(b.payOff, off)
	}
	if off != int64(len(stream)) {
		panic(ErrCorrupt{Off: int(off)})
	}
	b.payBytes = stream
	b.PayLen = append(b.PayLen[:0], lens...)
}

// PaySpan returns record i's slice of the read-side payload stream. The
// slice aliases the stream passed to SetPayload.
func (b *ColBlock) PaySpan(i int) []byte {
	return b.payBytes[b.payOff[i]:b.payOff[i+1]]
}

// Columnar describes how a record type decomposes into a ColBlock — the
// optional schema a Codec carries to opt into the v3 columnar layout.
type Columnar[T any] struct {
	// Point marks that (Lon[i], Lat[i], T[i]) is record i's exact ST
	// extent, so a reader may filter records against query windows on the
	// decoded columns alone, before Join materializes them. Leave false
	// for extended records (trajectories) whose extent the columns only
	// summarize.
	Point bool
	// HasStr marks that Split fills the Str column (the schema's
	// dictionary-friendly string attribute).
	HasStr bool
	// Split appends exactly one value to each column the schema uses
	// (IDs, Lon, Lat, T, and Str iff HasStr) and writes any residual
	// fields to b.Pay. The caller closes the payload span with EndRecord.
	Split func(rec T, b *ColBlock)
	// Join rebuilds record i from the decoded columns; pay is positioned
	// over the record's payload span and must be fully consumed.
	Join func(b *ColBlock, i int, pay *Reader) T
}

// colBlockPool recycles ColBlocks across partition writes and reads; the
// column slices and payload buffers inside are the hot-loop allocations.
var colBlockPool = sync.Pool{New: func() any { return new(ColBlock) }}

// GetColBlock returns an empty ColBlock from the pool; pair with
// PutColBlock.
func GetColBlock() *ColBlock {
	b := colBlockPool.Get().(*ColBlock)
	b.Reset()
	return b
}

// PutColBlock returns b to the pool. Oversized blocks are dropped so a
// one-off giant block does not stay resident.
func PutColBlock(b *ColBlock) {
	if b == nil || cap(b.IDs) > maxPooledWriterCap || cap(b.Pay.buf) > maxPooledBufCap {
		return
	}
	b.payBytes = nil // never retain a caller's stream
	colBlockPool.Put(b)
}
