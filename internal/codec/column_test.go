package codec

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// Property tests for the v3 column codecs: encode∘decode is the identity
// (bit-exact for floats) over adversarial value sets, encoded output beats
// a gzip baseline on clustered input, and malformed payloads always panic
// ErrCorrupt rather than decoding silently or escaping Catch.

// roundTripInt64 encodes vals as a column and decodes it back.
func roundTripInt64(t *testing.T, vals []int64) {
	t.Helper()
	w := GetWriter()
	defer PutWriter(w)
	w.PutInt64Col(vals)
	got := Int64Col(w.Bytes(), len(vals), nil)
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: got %d, want %d", i, got[i], vals[i])
		}
	}
}

func roundTripFloat64(t *testing.T, vals []float64) {
	t.Helper()
	w := GetWriter()
	defer PutWriter(w)
	w.PutFloat64Col(vals)
	got := Float64Col(w.Bytes(), len(vals), nil)
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: got %x (%v), want %x (%v)",
				i, math.Float64bits(got[i]), got[i], math.Float64bits(vals[i]), vals[i])
		}
	}
}

func roundTripString(t *testing.T, vals []string) {
	t.Helper()
	w := GetWriter()
	defer PutWriter(w)
	w.PutStringCol(vals)
	got := StringCol(w.Bytes(), len(vals), nil)
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: got %q, want %q", i, got[i], vals[i])
		}
	}
}

func TestInt64ColRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	random := make([]int64, 500)
	for i := range random {
		random[i] = rng.Int63() - rng.Int63()
	}
	cases := map[string][]int64{
		"empty":        {},
		"single":       {42},
		"constant":     {7, 7, 7, 7, 7},
		"monotone":     {1, 2, 3, 100, 101, 102},
		"non-monotone": {5, -3, 9, -100, 0, 9},
		// Timestamps are not guaranteed sorted or positive (satellite spec:
		// non-monotone and negative timestamps).
		"negative-times": {-1_600_000_000, -1_600_000_050, -1_600_000_001},
		"duplicates":     {3, 3, 1, 1, 3, 3},
		// Deltas overflow int64 and must wrap round-trip.
		"extremes": {math.MaxInt64, math.MinInt64, 0, math.MaxInt64, -1, math.MinInt64},
		"random":   random,
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) { roundTripInt64(t, vals) })
	}
}

func TestFloat64ColRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	random := make([]float64, 500)
	for i := range random {
		random[i] = rng.NormFloat64() * 1e6
	}
	quantized := make([]float64, 500)
	for i := range quantized {
		quantized[i] = float64(rng.Intn(360_000_000)-180_000_000) / 1e6
	}
	cases := map[string][]float64{
		"empty":    {},
		"single":   {-73.99},
		"constant": {40.7, 40.7, 40.7},
		// Antimeridian and pole-adjacent coordinates.
		"antimeridian": {179.999999, -180.0, 180.0, -179.999999},
		"extremes":     {math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64},
		"inf-nan":      {math.Inf(1), math.Inf(-1), math.NaN(), 0},
		// -0.0 must survive bit-exactly (the quant grid would lose the sign).
		"negative-zero": {0.0, math.Copysign(0, -1), 1.5},
		"nan-payloads": {
			math.Float64frombits(0x7ff8000000000001),
			math.Float64frombits(0xfff800000000cafe),
			1.0,
		},
		"gps-grid": quantized,
		"random":   random,
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) { roundTripFloat64(t, vals) })
	}
}

func TestStringColRoundTrip(t *testing.T) {
	manyDistinct := make([]string, 300)
	for i := range manyDistinct {
		manyDistinct[i] = strings.Repeat("x", i%17) + string(rune('a'+i%26))
	}
	cases := map[string][]string{
		"empty":        {},
		"single":       {"taxi"},
		"constant":     {"yellow", "yellow", "yellow"},
		"low-card":     {"a", "b", "a", "c", "b", "a"},
		"empty-values": {"", "x", "", ""},
		"unicode":      {"東京", "ταξί", "🚕", "東京"},
		"hi-card":      manyDistinct,
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) { roundTripString(t, vals) })
	}
}

// TestDictBoundary pins the dictionary-size cliff: exactly maxDictSize
// distinct values still dictionary-encode; one more falls to plain. Both
// round-trip.
func TestDictBoundary(t *testing.T) {
	for _, distinct := range []int{maxDictSize, maxDictSize + 1} {
		vals := make([]string, 2*distinct)
		for i := range vals {
			vals[i] = strings.Repeat("v", 3) + string(rune(i%distinct))
		}
		roundTripString(t, vals)
		w := GetWriter()
		w.PutStringCol(vals)
		mode := w.Bytes()[0]
		PutWriter(w)
		if distinct <= maxDictSize && mode != colDict {
			t.Errorf("%d distinct: mode %d, want dict", distinct, mode)
		}
		if distinct > maxDictSize && mode != colPlain {
			t.Errorf("%d distinct: mode %d, want plain", distinct, mode)
		}
	}
}

// gzipLen returns len(gzip(b)), the baseline the column codecs must beat
// on clustered input.
func gzipLen(t *testing.T, b []byte) int {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

// TestClusteredBeatsGzip: on Z-order-clustered input (sorted, near-equal
// neighbors — what partition blocks actually hold), delta varint columns
// must encode smaller than gzip over the equivalent row-major fixed-width
// bytes. This is the size half of the v3 bet; the speed half is the encode
// benchmark.
func TestClusteredBeatsGzip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4096
	ts := make([]int64, n)
	lon := make([]float64, n)
	tcur := int64(1_357_000_000)
	for i := range ts {
		tcur += rng.Int63n(30)
		ts[i] = tcur
		lon[i] = -74.0 + float64(i)/1e5 + float64(rng.Intn(100))/1e6
	}

	w := GetWriter()
	defer PutWriter(w)
	w.PutInt64Col(ts)
	colT := w.Len()
	w.PutFloat64Col(lon)
	colLon := w.Len() - colT

	raw := make([]byte, 0, 16*n)
	for i := range ts {
		raw = binary.LittleEndian.AppendUint64(raw, uint64(ts[i]))
	}
	gzT := gzipLen(t, raw)
	raw = raw[:0]
	for i := range lon {
		raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(lon[i]))
	}
	gzLon := gzipLen(t, raw)

	if colT >= gzT {
		t.Errorf("clustered timestamps: column %dB >= gzip %dB", colT, gzT)
	}
	if colLon >= gzLon {
		t.Errorf("clustered longitudes: column %dB >= gzip %dB", colLon, gzLon)
	}
	t.Logf("timestamps: column %dB vs gzip %dB; longitudes: column %dB vs gzip %dB",
		colT, gzT, colLon, gzLon)
}

// TestColumnDecodeRejectsMalformed drives the decoders with structurally
// broken payloads; each must panic ErrCorrupt (observed via Catch), never
// decode silently.
func TestColumnDecodeRejectsMalformed(t *testing.T) {
	w := GetWriter()
	defer PutWriter(w)
	w.PutInt64Col([]int64{1, 2, 3})
	valid := append([]byte{}, w.Bytes()...)

	cases := map[string]func(){
		"bad mode":          func() { Int64Col([]byte{0xee, 1, 2}, 2, nil) },
		"truncated":         func() { Int64Col(valid[:len(valid)-1], 3, nil) },
		"trailing bytes":    func() { Int64Col(append(append([]byte{}, valid...), 0), 3, nil) },
		"wrong count":       func() { Int64Col(valid, 2, nil) },
		"nonempty at n=0":   func() { Int64Col(valid, 0, nil) },
		"negative count":    func() { Int64Col(valid, -1, nil) },
		"giant count":       func() { Int64Col(valid, MaxColumnValues+1, nil) },
		"empty payload":     func() { Int64Col(nil, 3, nil) },
		"float bad scale":   func() { Float64Col([]byte{colQuant, 200, 2}, 1, nil) },
		"float bad mode":    func() { Float64Col([]byte{colDict, 0}, 1, nil) },
		"string bad mode":   func() { StringCol([]byte{colQuant, 0}, 1, nil) },
		"dict zero entries": func() { StringCol([]byte{colDict, 0}, 1, nil) },
		"dict index oob": func() {
			dw := GetWriter()
			defer PutWriter(dw)
			dw.buf = append(dw.buf, colDict)
			dw.PutUvarint(1)
			dw.PutString("only")
			dw.PutUvarint(9) // index past the 1-entry dictionary
			StringCol(dw.Bytes(), 1, nil)
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			if err := Catch(fn); err == nil {
				t.Fatal("malformed payload decoded without error")
			}
		})
	}
}

// TestColBlockPayloadSpans pins SetPayload's tiling validation: spans must
// exactly cover the stream.
func TestColBlockPayloadSpans(t *testing.T) {
	b := GetColBlock()
	defer PutColBlock(b)
	stream := []byte{1, 2, 3, 4, 5}
	if err := Catch(func() { b.SetPayload(stream, []int64{2, 3}) }); err != nil {
		t.Fatalf("exact tiling rejected: %v", err)
	}
	if got := b.PaySpan(1); !bytes.Equal(got, []byte{3, 4, 5}) {
		t.Fatalf("PaySpan(1) = %v", got)
	}
	for name, lens := range map[string][]int64{
		"short":    {2, 2},
		"long":     {2, 4},
		"negative": {-1, 6},
	} {
		if err := Catch(func() { b.SetPayload(stream, lens) }); err == nil {
			t.Fatalf("%s spans accepted", name)
		}
	}
}

// FuzzColumnCodecs drives all three column decoders plus the framed
// round-trip from one corpus. Invariants: decoders never panic outside
// Catch; values derived from the input round-trip exactly; and a single
// byte flip anywhere in a CRC-framed column is always caught.
func FuzzColumnCodecs(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{colConst, 2}, uint16(1))
	f.Add([]byte{colDelta, 2, 1, 1}, uint16(3))
	f.Add([]byte{colDict, 1, 1, 'a', 0, 0}, uint16(2))
	w := GetWriter()
	w.PutFloat64Col([]float64{-74.0, -74.000001, 40.7})
	f.Add(append([]byte{}, w.Bytes()...), uint16(3))
	PutWriter(w)
	f.Fuzz(func(t *testing.T, data []byte, n16 uint16) {
		n := int(n16)
		// 1. Arbitrary bytes through every decoder: ErrCorrupt or success,
		// never an escaped panic. A successful decode must return n values.
		if err := Catch(func() {
			if got := Int64Col(data, n, nil); len(got) != n {
				t.Fatalf("Int64Col returned %d values for n=%d", len(got), n)
			}
		}); err != nil {
			_ = err
		}
		_ = Catch(func() { Float64Col(data, n, nil) })
		_ = Catch(func() { StringCol(data, n, nil) })

		// 2. Round-trip identity over values derived from the input.
		if len(data) > 0 {
			ints := make([]int64, 0, len(data)/2)
			floats := make([]float64, 0, len(data)/8)
			for i := 0; i+1 < len(data); i += 2 {
				ints = append(ints, int64(int16(binary.LittleEndian.Uint16(data[i:])))<<int(data[i]%48))
			}
			for i := 0; i+8 <= len(data); i += 8 {
				floats = append(floats, math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
			}
			rw := GetWriter()
			rw.PutInt64Col(ints)
			got := Int64Col(rw.Bytes(), len(ints), nil)
			for i := range ints {
				if got[i] != ints[i] {
					t.Fatalf("int round-trip: [%d] = %d, want %d", i, got[i], ints[i])
				}
			}
			rw.Reset()
			rw.PutFloat64Col(floats)
			gotF := Float64Col(rw.Bytes(), len(floats), nil)
			for i := range floats {
				if math.Float64bits(gotF[i]) != math.Float64bits(floats[i]) {
					t.Fatalf("float round-trip: [%d] bits differ", i)
				}
			}

			// 3. CRC framing: flip one byte (position chosen by the input)
			// of a framed int column; Frame() must reject it.
			rw.Reset()
			rw.PutInt64Col(ints)
			fw := GetWriter()
			fw.PutFrame(rw.Bytes())
			framed := append([]byte{}, fw.Bytes()...)
			PutWriter(fw)
			PutWriter(rw)
			pos := int(n16) % len(framed)
			framed[pos] ^= 0x5a
			err := Catch(func() {
				r := NewReader(framed)
				payload := r.Frame()
				if r.Remaining() != 0 {
					r.corrupt()
				}
				Int64Col(payload, len(ints), nil)
			})
			if err == nil {
				t.Fatalf("byte flip at %d of framed column went undetected", pos)
			}
		}
	})
}
