package codec

import (
	"sync"
	"testing"
)

func TestWriterPoolRoundTrip(t *testing.T) {
	w := GetWriter()
	if w.Len() != 0 {
		t.Fatalf("pooled writer not reset: len=%d", w.Len())
	}
	w.PutString("pooled")
	PutWriter(w)
	// A writer fetched after a Put starts empty even if it is the same object.
	w2 := GetWriter()
	if w2.Len() != 0 {
		t.Errorf("reused writer carries %d stale bytes", w2.Len())
	}
	PutWriter(w2)
	PutWriter(nil) // must not panic
}

func TestWriterPoolDropsOversized(t *testing.T) {
	w := &Writer{buf: make([]byte, 0, maxPooledWriterCap+1)}
	PutWriter(w) // silently dropped; nothing observable to assert beyond no panic
}

func TestGetBufLengthsAndReuse(t *testing.T) {
	for _, n := range []int{0, 1, 100, 64 << 10, 1 << 20} {
		b := GetBuf(n)
		if len(b) != n {
			t.Fatalf("GetBuf(%d) returned len %d", n, len(b))
		}
		PutBuf(b)
	}
	PutBuf(nil) // must not panic
}

// TestPoolsConcurrent hammers both pools from many goroutines; the race
// detector (make check) turns any sharing bug into a failure.
func TestPoolsConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w := GetWriter()
				w.PutUvarint(uint64(g*1000 + i))
				w.PutString("concurrent")
				r := NewReader(w.Bytes())
				if got := r.Uvarint(); got != uint64(g*1000+i) {
					t.Errorf("pooled writer cross-talk: got %d", got)
				}
				PutWriter(w)

				b := GetBuf(128 + i%1024)
				for j := range b {
					b[j] = byte(g)
				}
				for j := range b {
					if b[j] != byte(g) {
						t.Error("pooled buffer cross-talk")
						break
					}
				}
				PutBuf(b)
			}
		}(g)
	}
	wg.Wait()
}
