package codec

import (
	"testing"
)

// Fuzz targets: decoding arbitrary bytes must never panic with anything
// but ErrCorrupt (which Catch converts to an error), and valid encodings
// must round-trip. Run the corpus as normal tests, or explore with
// `go test -fuzz=FuzzDecode ./internal/codec`.

func FuzzDecodeInt64(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(Marshal(Int64, -123456789))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(Int64, data)
		if err == nil {
			// A clean decode must re-encode to an equal value.
			if got, err2 := Unmarshal(Int64, Marshal(Int64, v)); err2 != nil || got != v {
				t.Fatalf("re-encode of %d failed: %v", v, err2)
			}
		}
	})
}

func FuzzDecodeString(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 'h', 'e'}) // length longer than payload
	f.Add(Marshal(String, "héllo"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(String, data)
		if err == nil {
			if got, err2 := Unmarshal(String, Marshal(String, v)); err2 != nil || got != v {
				t.Fatalf("re-encode of %q failed: %v", v, err2)
			}
		}
	})
}

func FuzzDecodePairSlice(f *testing.F) {
	c := SliceOf(PairOf(Int64, Float64))
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x02, 0x00})
	f.Add(Marshal(c, []Pair[int64, float64]{KV(int64(1), 2.5)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(c, data)
		if err == nil {
			b := Marshal(c, v)
			got, err2 := Unmarshal(c, b)
			if err2 != nil || len(got) != len(v) {
				t.Fatalf("re-encode failed: %v", err2)
			}
		}
	})
}
