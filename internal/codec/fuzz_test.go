package codec

import (
	"testing"
)

// Fuzz targets: decoding arbitrary bytes must never panic with anything
// but ErrCorrupt (which Catch converts to an error), and valid encodings
// must round-trip. Run the corpus as normal tests, or explore with
// `go test -fuzz=FuzzDecode ./internal/codec`.

func FuzzDecodeInt64(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(Marshal(Int64, -123456789))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(Int64, data)
		if err == nil {
			// A clean decode must re-encode to an equal value.
			if got, err2 := Unmarshal(Int64, Marshal(Int64, v)); err2 != nil || got != v {
				t.Fatalf("re-encode of %d failed: %v", v, err2)
			}
		}
	})
}

func FuzzDecodeString(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 'h', 'e'}) // length longer than payload
	f.Add(Marshal(String, "héllo"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(String, data)
		if err == nil {
			if got, err2 := Unmarshal(String, Marshal(String, v)); err2 != nil || got != v {
				t.Fatalf("re-encode of %q failed: %v", v, err2)
			}
		}
	})
}

// FuzzFrame feeds arbitrary bytes to the integrity-frame decoder: any
// mutation must surface as ErrCorrupt, never another panic, and a clean
// decode must return exactly the framed payload.
func FuzzFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		w := NewWriter(len(payload) + 16)
		w.PutFrame(payload)
		out := make([]byte, w.Len())
		copy(out, w.Bytes())
		return out
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(frame(nil))
	f.Add(frame([]byte("hello frame")))
	f.Fuzz(func(t *testing.T, data []byte) {
		var payload []byte
		err := Catch(func() {
			r := NewReader(data)
			payload = r.Frame()
			if r.Remaining() != 0 {
				panic(ErrCorrupt{Off: len(data) - r.Remaining()})
			}
		})
		if err != nil {
			return
		}
		// A clean decode's payload must checksum to the frame's stored CRC
		// (the decoder promised as much) and survive a re-frame round trip.
		// Byte-identity of the whole frame is NOT asserted: varint lengths
		// admit non-minimal encodings.
		reframed := frame(payload)
		var back []byte
		if err := Catch(func() { back = NewReader(reframed).Frame() }); err != nil {
			t.Fatalf("re-framed payload failed to decode: %v", err)
		}
		if string(back) != string(payload) {
			t.Fatalf("payload %x re-framed to %x which decodes to %x", payload, reframed, back)
		}
	})
}

func FuzzDecodePairSlice(f *testing.F) {
	c := SliceOf(PairOf(Int64, Float64))
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x02, 0x00})
	f.Add(Marshal(c, []Pair[int64, float64]{KV(int64(1), 2.5)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(c, data)
		if err == nil {
			b := Marshal(c, v)
			got, err2 := Unmarshal(c, b)
			if err2 != nil || len(got) != len(v) {
				t.Fatalf("re-encode failed: %v", err2)
			}
		}
	})
}
