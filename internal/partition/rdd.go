package partition

import (
	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/index"
)

// Options tunes sample-plan-shuffle partitioning.
type Options struct {
	// SampleFrac is the fraction of records sampled for planning (the
	// paper's sr). 0 means 0.01.
	SampleFrac float64
	// Seed makes the sample deterministic.
	Seed int64
	// Duplicate assigns a record to every partition its box overlaps
	// (required for correctness of cross-instance extractions like
	// companion search); false assigns each record exactly once.
	Duplicate bool
	// BufferSpace and BufferTime grow each record's box before duplicate
	// assignment — set them to the join thresholds so threshold-bounded
	// pair extraction is complete across partition borders. Ignored
	// without Duplicate.
	BufferSpace float64
	BufferTime  int64
}

// ByPlanner repartitions r ST-awareness-style: sample boxes, plan partition
// extents, then shuffle every record to its partition(s). It returns the
// shuffled RDD and the assigner (whose bounds callers persist as metadata
// for on-disk indexing, §4.1).
func ByPlanner[T any](
	r *engine.RDD[T],
	c codec.Codec[T],
	boxOf func(T) index.Box,
	planner Planner,
	opt Options,
) (*engine.RDD[T], *Assigner) {
	frac := opt.SampleFrac
	if frac <= 0 {
		frac = 0.01
	}
	var sample []index.Box
	if frac < 1 {
		sample = engine.Map(r.Sample(frac, opt.Seed), boxOf).Collect()
	}
	if len(sample) == 0 {
		// Tiny datasets: plan over everything rather than fail.
		sample = engine.Map(r, boxOf).Collect()
	}
	if len(sample) == 0 {
		return r, NewAssigner(nil)
	}
	bounds := planner.Plan(sample)
	a := NewAssigner(bounds)
	out := engine.PartitionByMulti(r, c, len(bounds), func(v T) []int {
		if opt.Duplicate {
			return a.AssignAllBuffered(boxOf(v), opt.BufferSpace, opt.BufferTime)
		}
		return []int{a.Assign(boxOf(v))}
	})
	return out, a
}
