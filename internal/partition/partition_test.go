package partition

import (
	"math"
	"math/rand"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/tempo"
)

// skewedSample generates ST boxes whose spatial distribution shifts with
// time of day, mimicking urban data: morning activity near one hub, evening
// near another. This time-space correlation is what T-STR exploits.
func skewedSample(rng *rand.Rand, n int) []index.Box {
	out := make([]index.Box, n)
	for i := range out {
		var h geom.Point
		var t int64
		if rng.Float64() < 0.5 {
			// Morning rush near the business district.
			h = geom.Pt(10, 10)
			t = int64(8*3600 + rng.NormFloat64()*3600)
		} else {
			// Evening rush near the residential area.
			h = geom.Pt(80, 70)
			t = int64(18*3600 + rng.NormFloat64()*3600)
		}
		if t < 0 {
			t = 0
		}
		p := geom.Pt(h.X+rng.NormFloat64()*5, h.Y+rng.NormFloat64()*5)
		out[i] = index.BoxOfPoint(p, t)
	}
	return out
}

func planAndCount(t *testing.T, p Planner, sample []index.Box) ([]index.Box, []int64) {
	t.Helper()
	bounds := p.Plan(sample)
	if len(bounds) == 0 {
		t.Fatalf("%s produced no partitions", p.Name())
	}
	a := NewAssigner(bounds)
	counts := make([]int64, len(bounds))
	for _, b := range sample {
		counts[a.Assign(b)]++
	}
	return bounds, counts
}

func totalCount(counts []int64) int64 {
	var s int64
	for _, c := range counts {
		s += c
	}
	return s
}

func TestPlannersAssignEveryRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := skewedSample(rng, 5000)
	planners := []Planner{
		STR2D{N: 16}, TSTR{GT: 4, GS: 4}, TBalance{N: 16},
		QuadTree{N: 16}, KDTree{N: 16}, Grid{N: 16},
	}
	for _, p := range planners {
		_, counts := planAndCount(t, p, sample)
		if got := totalCount(counts); got != 5000 {
			t.Errorf("%s lost records: %d", p.Name(), got)
		}
	}
}

func TestTSTRPartitionCountAndBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := skewedSample(rng, 20000)
	bounds, counts := planAndCount(t, TSTR{GT: 8, GS: 8}, sample)
	if len(bounds) != 64 {
		t.Fatalf("partitions = %d, want 64", len(bounds))
	}
	if cv := CV(counts); cv > 0.35 {
		t.Errorf("T-STR CV = %g, want < 0.35 (plan on full data)", cv)
	}
}

func TestTSTRTemporalSlicesAligned(t *testing.T) {
	// All partitions within one temporal bucket share the same time bounds.
	rng := rand.New(rand.NewSource(3))
	sample := skewedSample(rng, 10000)
	bounds := TSTR{GT: 4, GS: 4}.Plan(sample)
	timeBounds := map[[2]float64]int{}
	for _, b := range bounds {
		timeBounds[[2]float64{b.Min[2], b.Max[2]}]++
	}
	if len(timeBounds) != 4 {
		t.Errorf("distinct time slices = %d, want 4", len(timeBounds))
	}
	for k, n := range timeBounds {
		if n != 4 {
			t.Errorf("time slice %v has %d partitions, want 4", k, n)
		}
	}
}

func TestOVRankingMatchesTable5(t *testing.T) {
	// The paper's Table 5 shape: T-STR has (near-)lowest OV; spatial-only
	// partitioners (KD/Grid/STR2D) have higher OV in ST space because each
	// partition spans all time; T-balance spans all space.
	rng := rand.New(rand.NewSource(4))
	sample := skewedSample(rng, 20000)
	all := coverBox(sample)
	// OV is measured over the tight cover boxes of the records each
	// partition actually receives (planned bounds may tile unboundedly).
	ovOf := func(p Planner) float64 {
		bounds := p.Plan(sample)
		a := NewAssigner(bounds)
		covers := make([]index.Box, len(bounds))
		for i := range covers {
			covers[i] = index.EmptyBox()
		}
		for _, b := range sample {
			id := a.Assign(b)
			covers[id] = covers[id].Union(b)
		}
		tight := covers[:0]
		for _, c := range covers {
			if !c.IsEmpty() {
				tight = append(tight, c)
			}
		}
		return OV(tight, all)
	}

	tstr := ovOf(TSTR{GT: 6, GS: 6})
	str2d := ovOf(STR2D{N: 36})
	kd := ovOf(KDTree{N: 36})

	// Spatial-only partitionings (2-d STR, KD) leave every partition
	// covering the full time range; T-STR's explicit temporal slicing
	// yields tighter ST covers. (The GeoMesa-style Z-chunk layout is
	// measured on the real store in internal/bench's Table 5.)
	if tstr >= str2d {
		t.Errorf("OV: T-STR (%g) should beat 2-d STR (%g)", tstr, str2d)
	}
	if tstr >= kd {
		t.Errorf("OV: T-STR (%g) should beat KD (%g)", tstr, kd)
	}
}

func TestCVMetric(t *testing.T) {
	if cv := CV([]int64{10, 10, 10}); cv != 0 {
		t.Errorf("uniform CV = %g", cv)
	}
	if cv := CV([]int64{0, 0, 30}); math.Abs(cv-math.Sqrt2) > 1e-9 {
		t.Errorf("skewed CV = %g, want sqrt(2)", cv)
	}
	if cv := CV(nil); cv != 0 {
		t.Errorf("empty CV = %g", cv)
	}
	if cv := CV([]int64{0, 0}); cv != 0 {
		t.Errorf("zero-mean CV = %g", cv)
	}
}

func TestOVMetric(t *testing.T) {
	all := index.Box3(geom.Box(0, 0, 10, 10), tempo.New(0, 100))
	// Two disjoint halves along time: OV = 1.
	h1 := index.Box3(geom.Box(0, 0, 10, 10), tempo.New(0, 50))
	h2 := index.Box3(geom.Box(0, 0, 10, 10), tempo.New(50, 100))
	if ov := OV([]index.Box{h1, h2}, all); math.Abs(ov-1) > 1e-9 {
		t.Errorf("disjoint halves OV = %g, want 1", ov)
	}
	// Two copies of everything: OV = 2.
	if ov := OV([]index.Box{all, all}, all); math.Abs(ov-2) > 1e-9 {
		t.Errorf("full overlap OV = %g, want 2", ov)
	}
}

func TestAssignerNearestFallback(t *testing.T) {
	bounds := []index.Box{
		index.Box3(geom.Box(0, 0, 10, 10), tempo.New(0, 100)),
		index.Box3(geom.Box(20, 0, 30, 10), tempo.New(0, 100)),
	}
	a := NewAssigner(bounds)
	// A record far outside both partitions goes to the nearest.
	outside := index.BoxOfPoint(geom.Pt(32, 5), 50)
	if got := a.Assign(outside); got != 1 {
		t.Errorf("nearest fallback = %d, want 1", got)
	}
	inside := index.BoxOfPoint(geom.Pt(5, 5), 50)
	if got := a.Assign(inside); got != 0 {
		t.Errorf("containment assign = %d, want 0", got)
	}
}

func TestAssignAllDuplication(t *testing.T) {
	bounds := []index.Box{
		index.Box3(geom.Box(0, 0, 10, 10), tempo.New(0, 100)),
		index.Box3(geom.Box(10, 0, 20, 10), tempo.New(0, 100)),
	}
	a := NewAssigner(bounds)
	// A box straddling the border overlaps both.
	straddle := index.Box3(geom.Box(8, 2, 12, 4), tempo.New(10, 20))
	got := a.AssignAll(straddle)
	if len(got) != 2 {
		t.Errorf("straddling box assigned to %v, want both", got)
	}
	// A far-away box still gets one target.
	far := index.BoxOfPoint(geom.Pt(100, 100), 50)
	if got := a.AssignAll(far); len(got) != 1 {
		t.Errorf("far box assigned to %v, want one", got)
	}
}

func TestQuadTreeAdaptsToSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sample := skewedSample(rng, 10000)
	bounds := QuadTree{N: 32}.Plan(sample)
	if len(bounds) < 16 || len(bounds) > 128 {
		t.Errorf("quadtree leaves = %d, expected near 32", len(bounds))
	}
	// Quadtree on skewed data should beat a uniform grid's CV.
	aq := NewAssigner(bounds)
	qCounts := make([]int64, len(bounds))
	for _, b := range sample {
		qCounts[aq.Assign(b)]++
	}
	gBounds := Grid{N: len(bounds)}.Plan(sample)
	ag := NewAssigner(gBounds)
	gCounts := make([]int64, len(gBounds))
	for _, b := range sample {
		gCounts[ag.Assign(b)]++
	}
	if CV(qCounts) >= CV(gCounts) {
		t.Errorf("quadtree CV %g should beat grid CV %g on skewed data",
			CV(qCounts), CV(gCounts))
	}
}

func TestKDTreeLeafCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sample := skewedSample(rng, 4096)
	bounds := KDTree{N: 32}.Plan(sample)
	if len(bounds) != 32 {
		t.Errorf("KD leaves = %d, want 32", len(bounds))
	}
}

func TestPlannersHandleTinySamples(t *testing.T) {
	one := []index.Box{index.BoxOfPoint(geom.Pt(1, 1), 10)}
	for _, p := range []Planner{
		STR2D{N: 8}, TSTR{GT: 4, GS: 4}, TBalance{N: 8},
		QuadTree{N: 8}, KDTree{N: 8}, Grid{N: 8},
	} {
		bounds := p.Plan(one)
		if len(bounds) == 0 {
			t.Errorf("%s: no partitions for single sample", p.Name())
		}
		if p.Plan(nil) != nil {
			t.Errorf("%s: empty sample should plan nil", p.Name())
		}
	}
}

func TestByPlannerRDDIntegration(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	rng := rand.New(rand.NewSource(7))
	type rec struct {
		P geom.Point
		T int64
	}
	data := make([]rec, 3000)
	for i := range data {
		data[i] = rec{P: geom.Pt(rng.Float64()*100, rng.Float64()*100), T: rng.Int63n(86400)}
	}
	c := codec.Codec[rec]{
		Enc: func(w *codec.Writer, v rec) {
			codec.PointC.Enc(w, v.P)
			w.PutVarint(v.T)
		},
		Dec: func(r *codec.Reader) rec {
			return rec{P: codec.PointC.Dec(r), T: r.Varint()}
		},
	}
	boxOf := func(v rec) index.Box { return index.BoxOfPoint(v.P, v.T) }
	r := engine.Parallelize(ctx, data, 8)
	out, a := ByPlanner(r, c, boxOf, TSTR{GT: 4, GS: 4}, Options{SampleFrac: 0.2, Seed: 1})
	if out.NumPartitions() != a.NumPartitions() {
		t.Fatalf("partition count mismatch: %d vs %d", out.NumPartitions(), a.NumPartitions())
	}
	if got := out.Count(); got != 3000 {
		t.Fatalf("records after partitioning = %d", got)
	}
	// Every record is inside (or at least near) its partition's extent:
	// verify the partition a record landed in is the one Assign picks.
	parts := out.CollectPartitions()
	for p, part := range parts {
		for _, v := range part {
			if got := a.Assign(boxOf(v)); got != p {
				t.Fatalf("record in partition %d but Assign says %d", p, got)
			}
		}
	}
	// Balance should be reasonable when planning from a 20% sample.
	if cv := CV(out.CountByPartition()); cv > 0.6 {
		t.Errorf("CV = %g too high", cv)
	}
}

func TestByPlannerDuplicateMode(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	// Boxes that straddle partition borders must appear in every partition
	// they overlap when Duplicate is on.
	type rec struct{ B index.Box }
	c := codec.Codec[rec]{
		Enc: func(w *codec.Writer, v rec) {
			for i := 0; i < 3; i++ {
				w.PutFloat64(v.B.Min[i])
				w.PutFloat64(v.B.Max[i])
			}
		},
		Dec: func(r *codec.Reader) rec {
			var b index.Box
			for i := 0; i < 3; i++ {
				b.Min[i] = r.Float64()
				b.Max[i] = r.Float64()
			}
			return rec{B: b}
		},
	}
	rng := rand.New(rand.NewSource(8))
	data := make([]rec, 1000)
	for i := range data {
		x, y := rng.Float64()*100, rng.Float64()*100
		tt := float64(rng.Int63n(1000))
		data[i] = rec{B: index.Box{
			Min: [3]float64{x, y, tt},
			Max: [3]float64{x + 10, y + 10, tt + 100},
		}}
	}
	r := engine.Parallelize(ctx, data, 4)
	boxOf := func(v rec) index.Box { return v.B }
	out, _ := ByPlanner(r, c, boxOf, STR2D{N: 9}, Options{SampleFrac: 0.5, Seed: 2, Duplicate: true})
	if got := out.Count(); got < 1000 {
		t.Errorf("duplicate mode should not lose records: %d", got)
	}
}
