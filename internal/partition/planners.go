package partition

import (
	"fmt"
	"math"

	"st4ml/internal/index"
)

// unbounded is the extent used for the open edges of tiling partitions.
const unbounded = 1e18

// STR2D is the classic sort-tile-recursive spatial partitioner: tiles the
// sample into ~n groups by x then y, ignoring time. Each partition spans
// all time (which is what makes it ST-unaware — the baseline T-STR
// improves on, Table 6).
//
// Partitions *tile* the plane — boundaries fall midway between adjacent
// groups and the edge tiles are unbounded — so every future record's
// center lies in exactly one partition and buffered duplication finds
// every partition within a join threshold (no sample-gap misses).
type STR2D struct {
	N int // requested partition count
}

// Name implements Planner.
func (p STR2D) Name() string { return fmt.Sprintf("STR2D(%d)", p.N) }

// Plan implements Planner.
func (p STR2D) Plan(sample []index.Box) []index.Box {
	if len(sample) == 0 {
		return nil
	}
	n := p.N
	if n < 1 {
		n = 1
	}
	bounds := strTile(append([]index.Box(nil), sample...), n)
	for i := range bounds {
		bounds[i].Min[2], bounds[i].Max[2] = -unbounded, unbounded
	}
	return bounds
}

// strTile runs 2-d STR over boxes: √n vertical slabs by x-center, each
// split into groups by y-center, returning *tiling* spatial bounds (time
// axis left zeroed for the caller to fill). Exactly n tiles come out
// (fewer only when len(boxes) < n): slab i takes its proportional share.
func strTile(boxes []index.Box, n int) []index.Box {
	sx := int(math.Ceil(math.Sqrt(float64(n))))
	sortByCenter(boxes, 0)
	slabs := chunksOfEqualCount(boxes, sx)
	xBounds := tileBoundaries(slabs, 0)
	out := make([]index.Box, 0, n)
	remaining := n
	for i, slab := range slabs {
		slabsLeft := len(slabs) - i
		sy := remaining / slabsLeft
		if remaining%slabsLeft != 0 {
			sy++
		}
		sortByCenter(slab, 1)
		groups := chunksOfEqualCount(slab, sy)
		yBounds := tileBoundaries(groups, 1)
		for j := range groups {
			var b index.Box
			b.Min[0], b.Max[0] = xBounds[i], xBounds[i+1]
			b.Min[1], b.Max[1] = yBounds[j], yBounds[j+1]
			out = append(out, b)
		}
		remaining -= sy
	}
	return out
}

// tileBoundaries derives contiguous tile edges for sorted groups on axis d:
// interior edges fall midway between the adjacent groups' extreme centers,
// and the two outer edges are unbounded. len(result) == len(groups)+1.
func tileBoundaries(groups [][]index.Box, d int) []float64 {
	edges := make([]float64, len(groups)+1)
	edges[0] = -unbounded
	edges[len(groups)] = unbounded
	for i := 1; i < len(groups); i++ {
		prev := groups[i-1]
		next := groups[i]
		hi := prev[len(prev)-1].Center()[d]
		lo := next[0].Center()[d]
		edges[i] = (hi + lo) / 2
	}
	return edges
}

// TSTR is the paper's T-STR partitioner (Algorithm 1): first segment the
// sample along time into GT equal-count buckets, then split each bucket
// spatially with 2-d STR into GS groups, yielding GT×GS ST partitions.
// Like STR2D, the partitions tile ST space (midpoint boundaries, unbounded
// edges) so assignment is total and buffered duplication is complete.
type TSTR struct {
	GT int // temporal granularity
	GS int // spatial granularity
}

// Name implements Planner.
func (p TSTR) Name() string { return fmt.Sprintf("TSTR(%d,%d)", p.GT, p.GS) }

// Plan implements Planner.
func (p TSTR) Plan(sample []index.Box) []index.Box {
	if len(sample) == 0 {
		return nil
	}
	gt, gs := p.GT, p.GS
	if gt < 1 {
		gt = 1
	}
	if gs < 1 {
		gs = 1
	}
	own := append([]index.Box(nil), sample...)
	sortByCenter(own, 2)
	tBuckets := chunksOfEqualCount(own, gt)
	tEdges := tileBoundaries(tBuckets, 2)
	var bounds []index.Box
	for bi, bucket := range tBuckets {
		for _, b := range strTile(bucket, gs) {
			b.Min[2], b.Max[2] = tEdges[bi], tEdges[bi+1]
			bounds = append(bounds, b)
		}
	}
	return bounds
}

// TBalance partitions by time only, into N equal-count buckets (the
// approx-percentile temporal partitioner of §3.1). Partitions span the full
// sampled spatial extent.
type TBalance struct {
	N int
}

// Name implements Planner.
func (p TBalance) Name() string { return fmt.Sprintf("TBalance(%d)", p.N) }

// Plan implements Planner.
func (p TBalance) Plan(sample []index.Box) []index.Box {
	if len(sample) == 0 {
		return nil
	}
	n := p.N
	if n < 1 {
		n = 1
	}
	own := append([]index.Box(nil), sample...)
	sortByCenter(own, 2)
	all := coverBox(own)
	buckets := chunksOfEqualCount(own, n)
	bounds := make([]index.Box, len(buckets))
	for i, bucket := range buckets {
		b := coverBox(bucket)
		b.Min[0], b.Max[0] = all.Min[0], all.Max[0]
		b.Min[1], b.Max[1] = all.Min[1], all.Max[1]
		bounds[i] = b
	}
	return bounds
}

// QuadTree recursively splits space into four quadrants until each leaf
// holds at most |sample|/N boxes, ignoring time (§3.1's quad-tree
// partitioner). Leaf count approximates N but adapts to skew.
type QuadTree struct {
	N        int
	MaxDepth int // 0 means a depth bound of 16
}

// Name implements Planner.
func (p QuadTree) Name() string { return fmt.Sprintf("QuadTree(%d)", p.N) }

// Plan implements Planner.
func (p QuadTree) Plan(sample []index.Box) []index.Box {
	if len(sample) == 0 {
		return nil
	}
	n := p.N
	if n < 1 {
		n = 1
	}
	maxDepth := p.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 16
	}
	capacity := (len(sample) + n - 1) / n
	if capacity < 1 {
		capacity = 1
	}
	all := coverBox(sample)
	var leaves []index.Box
	var split func(boxes []index.Box, cell index.Box, depth int)
	split = func(boxes []index.Box, cell index.Box, depth int) {
		if len(boxes) <= capacity || depth >= maxDepth {
			if len(boxes) == 0 {
				return
			}
			b := coverBox(boxes)
			b.Min[2], b.Max[2] = all.Min[2], all.Max[2]
			leaves = append(leaves, b)
			return
		}
		midX := (cell.Min[0] + cell.Max[0]) / 2
		midY := (cell.Min[1] + cell.Max[1]) / 2
		quads := make([][]index.Box, 4)
		cells := [4]index.Box{}
		for q := 0; q < 4; q++ {
			cells[q] = cell
		}
		cells[0].Max[0], cells[0].Max[1] = midX, midY
		cells[1].Min[0], cells[1].Max[1] = midX, midY
		cells[2].Max[0], cells[2].Min[1] = midX, midY
		cells[3].Min[0], cells[3].Min[1] = midX, midY
		for _, b := range boxes {
			c := b.Center()
			q := 0
			if c[0] >= midX {
				q |= 1
			}
			if c[1] >= midY {
				q |= 2
			}
			quads[q] = append(quads[q], b)
		}
		for q := 0; q < 4; q++ {
			split(quads[q], cells[q], depth+1)
		}
	}
	split(sample, all, 0)
	return leaves
}

// KDTree is the spatial-only KD-tree partitioner that the GeoSpark-like
// baseline uses: repeatedly median-split the most populated leaf on
// alternating spatial axes until N leaves exist.
type KDTree struct {
	N int
}

// Name implements Planner.
func (p KDTree) Name() string { return fmt.Sprintf("KDTree(%d)", p.N) }

type kdLeaf struct {
	boxes []index.Box
	depth int
}

// Plan implements Planner.
func (p KDTree) Plan(sample []index.Box) []index.Box {
	if len(sample) == 0 {
		return nil
	}
	n := p.N
	if n < 1 {
		n = 1
	}
	leaves := []kdLeaf{{boxes: append([]index.Box(nil), sample...)}}
	for len(leaves) < n {
		// Split the largest leaf.
		largest, size := -1, 1 // leaves of size <= 1 cannot split
		for i, l := range leaves {
			if len(l.boxes) > size {
				largest, size = i, len(l.boxes)
			}
		}
		if largest < 0 {
			break
		}
		l := leaves[largest]
		axis := l.depth % 2
		sortByCenter(l.boxes, axis)
		mid := len(l.boxes) / 2
		leaves[largest] = kdLeaf{boxes: l.boxes[:mid], depth: l.depth + 1}
		leaves = append(leaves, kdLeaf{boxes: l.boxes[mid:], depth: l.depth + 1})
	}
	all := coverBox(sample)
	bounds := make([]index.Box, len(leaves))
	for i, l := range leaves {
		b := coverBox(l.boxes)
		b.Min[2], b.Max[2] = all.Min[2], all.Max[2]
		bounds[i] = b
	}
	return bounds
}

// Grid is the data-independent uniform spatial grid partitioner the
// GeoMesa-like baseline uses: ~√N × √N equal cells over the sampled
// spatial extent, spanning all time.
type Grid struct {
	N int
}

// Name implements Planner.
func (p Grid) Name() string { return fmt.Sprintf("Grid(%d)", p.N) }

// Plan implements Planner.
func (p Grid) Plan(sample []index.Box) []index.Box {
	if len(sample) == 0 {
		return nil
	}
	n := p.N
	if n < 1 {
		n = 1
	}
	nx := int(math.Ceil(math.Sqrt(float64(n))))
	ny := (n + nx - 1) / nx
	all := coverBox(sample)
	w := (all.Max[0] - all.Min[0]) / float64(nx)
	h := (all.Max[1] - all.Min[1]) / float64(ny)
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	var bounds []index.Box
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			b := all
			b.Min[0] = all.Min[0] + float64(ix)*w
			b.Max[0] = all.Min[0] + float64(ix+1)*w
			b.Min[1] = all.Min[1] + float64(iy)*h
			b.Max[1] = all.Min[1] + float64(iy+1)*h
			bounds = append(bounds, b)
		}
	}
	return bounds
}
