// Package partition implements ST4ML's ST-aware data partitioners (§3.1,
// §4.1): the novel T-STR partitioner (Algorithm 1), the classic 2-d STR and
// quadtree partitioners, the temporal T-balance partitioner, and the
// baseline partitioners used by the comparison systems (KD-tree for the
// GeoSpark-like baseline, uniform grid for the GeoMesa-like baseline).
//
// A Planner computes partition extents from a data sample; an Assigner maps
// record boxes to partition ids (optionally duplicating records into every
// overlapped partition, the paper's flatMap duplication mode); CV and OV
// compute the load-balance and ST-locality metrics of Table 5.
package partition

import (
	"math"
	"sort"

	"st4ml/internal/index"
)

// Planner computes partition extents from a sample of record ST boxes. The
// number of partitions produced is planner-specific (configured at
// construction) and may deviate slightly from the requested count.
type Planner interface {
	// Name identifies the planner in reports.
	Name() string
	// Plan returns the partition extents for the sampled boxes. It must
	// return at least one partition for a non-empty sample.
	Plan(sample []index.Box) []index.Box
}

// Assigner routes record boxes to planned partitions. Assignment indexes
// the partition extents with an R-tree, so per-record routing is
// logarithmic in the partition count.
type Assigner struct {
	bounds []index.Box
	tree   *index.RTree[int]
}

// NewAssigner builds an assigner over partition extents.
func NewAssigner(bounds []index.Box) *Assigner {
	items := make([]index.Item[int], len(bounds))
	for i, b := range bounds {
		items[i] = index.Item[int]{Box: b, Data: i}
	}
	return &Assigner{bounds: bounds, tree: index.BulkLoadSTR(items, 16)}
}

// NumPartitions returns the partition count.
func (a *Assigner) NumPartitions() int { return len(a.bounds) }

// Bounds returns the partition extents (not to be mutated).
func (a *Assigner) Bounds() []index.Box { return a.bounds }

// Assign returns the single partition for box b: the first partition
// containing b's center, else the nearest partition — so records outside
// every planned extent (possible, since plans come from samples) still land
// somewhere reasonable.
func (a *Assigner) Assign(b index.Box) int {
	c := b.Center()
	best, bestDist := -1, math.Inf(1)
	a.tree.SearchFunc(pointBox(c), func(p int, _ index.Box) bool {
		best = p
		return false // any containing partition is fine
	})
	if best >= 0 {
		return best
	}
	for i, pb := range a.bounds {
		if d := pb.DistanceSq(c); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// AssignAll returns every partition whose extent intersects b, or the
// single Assign result when none do — guaranteeing at least one target.
// This is the duplication mode used when overlap correctness requires a
// record in every partition it touches (e.g. companion extraction).
func (a *Assigner) AssignAll(b index.Box) []int {
	out := a.tree.Search(b)
	if len(out) == 0 {
		return []int{a.Assign(b)}
	}
	return out
}

// AssignAllBuffered is AssignAll over the record box grown by spaceBuf on
// the spatial axes and timeBuf on the temporal axis. A join with thresholds
// (d, t) over tiling partitions is complete when records are duplicated
// with buffers ≥ (d, t): every qualifying pair co-locates in at least the
// partition holding either member's center.
func (a *Assigner) AssignAllBuffered(b index.Box, spaceBuf float64, timeBuf int64) []int {
	b.Min[0] -= spaceBuf
	b.Min[1] -= spaceBuf
	b.Max[0] += spaceBuf
	b.Max[1] += spaceBuf
	b.Min[2] -= float64(timeBuf)
	b.Max[2] += float64(timeBuf)
	return a.AssignAll(b)
}

func pointBox(c [index.Dims]float64) index.Box {
	return index.Box{Min: c, Max: c}
}

// CV returns the coefficient of variation σ/μ of partition sizes — the load
// balance metric of Table 5 (smaller is more balanced). It returns 0 for
// fewer than one partition or zero mean.
func CV(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	mean := sum / float64(len(counts))
	if mean == 0 {
		return 0
	}
	var varsum float64
	for _, c := range counts {
		d := float64(c) - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(counts))) / mean
}

// OV returns the overlap metric of Table 5: the sum of partition ST volumes
// over the global ST volume, with every dimension normalized to [0, 1] over
// the global extent so that space and time contribute comparably. An
// ST-aware partitioning of k disjoint tight partitions gives OV ≈ 1;
// spatial-only partitionings that span all time score much worse than
// time-aware ones only when their spatial extents overlap, and random
// partitionings approach k.
func OV(bounds []index.Box, all index.Box) float64 {
	if all.IsEmpty() {
		return 0
	}
	var sum float64
	for _, b := range bounds {
		v := 1.0
		for d := 0; d < index.Dims; d++ {
			span := all.Max[d] - all.Min[d]
			if span <= 0 {
				continue // degenerate global dimension: contributes factor 1
			}
			ext := b.Max[d] - b.Min[d]
			if ext < 0 {
				v = 0
				break
			}
			f := ext / span
			if f > 1 {
				f = 1
			}
			v *= f
		}
		sum += v
	}
	return sum
}

// sortByCenter sorts boxes in place by their center on axis d.
func sortByCenter(boxes []index.Box, d int) {
	sort.Slice(boxes, func(i, j int) bool {
		return boxes[i].Center()[d] < boxes[j].Center()[d]
	})
}

// chunksOfEqualCount splits a sorted slice into n contiguous groups whose
// sizes differ by at most one.
func chunksOfEqualCount(boxes []index.Box, n int) [][]index.Box {
	if n < 1 {
		n = 1
	}
	total := len(boxes)
	out := make([][]index.Box, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		size := total / n
		if i < total%n {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, boxes[start:start+size])
		start += size
	}
	return out
}

// coverBox returns the MBR of a group of boxes.
func coverBox(boxes []index.Box) index.Box {
	b := index.EmptyBox()
	for _, x := range boxes {
		b = b.Union(x)
	}
	return b
}
