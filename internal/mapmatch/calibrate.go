package mapmatch

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/roadnet"
)

// Event-to-event calibration (§3.2.2): project each point event onto its
// nearest road segment — the single-point counterpart of map matching, used
// to snap noisy sensor readings onto the network before network-structured
// aggregation.

// CalibratedEvent is a projected event: the original value and data fields
// plus the matched segment.
type CalibratedEvent[V, D any] struct {
	Event instance.Event[geom.Point, V, D]
	Edge  roadnet.EdgeID
	// DistM is the metre distance from the original location to the
	// projection.
	DistM float64
}

// CalibrateEvent snaps one event onto the network. ok is false when the
// graph is empty.
func CalibrateEvent[V, D any](g *roadnet.Graph, e instance.Event[geom.Point, V, D]) (CalibratedEvent[V, D], bool) {
	edge, proj, dist, ok := g.NearestEdge(e.Entry.Spatial)
	if !ok {
		return CalibratedEvent[V, D]{}, false
	}
	out := e
	out.Entry.Spatial = proj
	return CalibratedEvent[V, D]{Event: out, Edge: edge, DistM: dist}, true
}

// CalibrateEvents runs event-to-event calibration over an RDD in parallel,
// dropping events with no reachable segment (empty graphs) and optionally
// those farther than maxDistM from the network (0 means keep all).
func CalibrateEvents[V, D any](
	r *engine.RDD[instance.Event[geom.Point, V, D]],
	g *roadnet.Graph,
	maxDistM float64,
) *engine.RDD[CalibratedEvent[V, D]] {
	return engine.FlatMap(r, func(e instance.Event[geom.Point, V, D]) []CalibratedEvent[V, D] {
		c, ok := CalibrateEvent(g, e)
		if !ok {
			return nil
		}
		if maxDistM > 0 && c.DistM > maxDistM {
			return nil
		}
		return []CalibratedEvent[V, D]{c}
	})
}
