package mapmatch

import (
	"math/rand"
	"testing"

	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/roadnet"
	"st4ml/internal/tempo"
)

// cityGraph builds a deterministic 8×8 grid, 400 m blocks.
func cityGraph() *roadnet.Graph {
	return roadnet.GenerateGrid(8, 8, 400, geom.Pt(116.3, 39.9), 0, 7)
}

// walkRoute simulates a vehicle driving a node path, emitting noisy GPS
// samples along each edge.
func walkRoute(g *roadnet.Graph, path []roadnet.EdgeID, noiseM float64, perEdge int, rng *rand.Rand) ([]geom.Point, []roadnet.EdgeID) {
	var pts []geom.Point
	var truth []roadnet.EdgeID
	for _, eid := range path {
		a, b := g.EdgeEndpoints(eid)
		for s := 0; s < perEdge; s++ {
			f := (float64(s) + 0.5) / float64(perEdge)
			p := geom.Pt(a.X+(b.X-a.X)*f, a.Y+(b.Y-a.Y)*f)
			p.X += geom.MetersToDegreesLon(rng.NormFloat64()*noiseM, p.Y)
			p.Y += geom.MetersToDegreesLat(rng.NormFloat64() * noiseM)
			pts = append(pts, p)
			truth = append(truth, eid)
		}
	}
	return pts, truth
}

// straightRoute returns an eastward route along the grid's bottom row.
func straightRoute(g *roadnet.Graph, hops int) []roadnet.EdgeID {
	var path []roadnet.EdgeID
	cur := roadnet.NodeID(0)
	for i := 0; i < hops; i++ {
		next := cur + 1
		found := roadnet.NoEdge
		for eid := 0; eid < g.NumEdges(); eid++ {
			e := g.Edge(roadnet.EdgeID(eid))
			if e.From == cur && e.To == next {
				found = e.ID
				break
			}
		}
		if found == roadnet.NoEdge {
			break
		}
		path = append(path, found)
		cur = next
	}
	return path
}

func TestMatchRecoversRoute(t *testing.T) {
	g := cityGraph()
	rng := rand.New(rand.NewSource(1))
	route := straightRoute(g, 5)
	if len(route) != 5 {
		t.Fatalf("route = %v", route)
	}
	pts, truth := walkRoute(g, route, 10, 4, rng)
	m := New(g, Config{SigmaZ: 15})
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range truth {
		if res.EdgeIDs[i] == truth[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(truth)); frac < 0.8 {
		t.Errorf("matched %d/%d points correctly (%.0f%%)", correct, len(truth), frac*100)
	}
	// Projections must lie on the network (within a metre of some edge).
	for i, p := range res.Projected {
		if res.EdgeIDs[i] == roadnet.NoEdge {
			continue
		}
		if d := g.DistanceToEdgeM(p, res.EdgeIDs[i]); d > 1 {
			t.Errorf("projection %d is %g m off its edge", i, d)
		}
	}
}

func TestMatchPathConnected(t *testing.T) {
	g := cityGraph()
	rng := rand.New(rand.NewSource(2))
	route := straightRoute(g, 6)
	// Sparse sampling: one point every other edge — the case-study regime
	// (few points, long gaps) where path inference matters.
	var pts []geom.Point
	for i, eid := range route {
		if i%2 == 1 {
			continue
		}
		a, b := g.EdgeEndpoints(eid)
		p := geom.Pt((a.X+b.X)/2, (a.Y+b.Y)/2)
		p.X += geom.MetersToDegreesLon(rng.NormFloat64()*5, p.Y)
		pts = append(pts, p)
	}
	m := New(g, Config{SigmaZ: 15})
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PathEdges) <= len(pts) {
		t.Errorf("path should include connecting segments: %d edges for %d points",
			len(res.PathEdges), len(pts))
	}
	// Path must be connected: consecutive edges share a node.
	for i := 1; i < len(res.PathEdges); i++ {
		prev := g.Edge(res.PathEdges[i-1])
		cur := g.Edge(res.PathEdges[i])
		if prev.To != cur.From {
			t.Fatalf("path disconnected at %d: %v -> %v", i, prev, cur)
		}
	}
}

func TestMatchNoCandidates(t *testing.T) {
	g := cityGraph()
	m := New(g, Config{SigmaZ: 10, CandidateRadiusM: 30})
	// Points far outside the city.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.1, 0.1)}
	if _, err := m.Match(pts); err == nil {
		t.Error("all-points-off-network should return ErrNoMatch")
	}
}

func TestMatchEmptyInput(t *testing.T) {
	m := New(cityGraph(), Config{})
	if _, err := m.Match(nil); err == nil {
		t.Error("empty trajectory should error")
	}
}

func TestMatchSkipsOutliers(t *testing.T) {
	g := cityGraph()
	rng := rand.New(rand.NewSource(3))
	route := straightRoute(g, 4)
	pts, _ := walkRoute(g, route, 8, 3, rng)
	// Inject an off-network outlier in the middle.
	outlierIdx := len(pts) / 2
	pts[outlierIdx] = geom.Pt(1, 1)
	m := New(g, Config{SigmaZ: 15, CandidateRadiusM: 60})
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeIDs[outlierIdx] != roadnet.NoEdge {
		t.Error("outlier should be unmatched")
	}
	matched := 0
	for _, e := range res.EdgeIDs {
		if e != roadnet.NoEdge {
			matched++
		}
	}
	if matched != len(pts)-1 {
		t.Errorf("matched %d of %d", matched, len(pts)-1)
	}
}

func TestMatchTrajectoryInstance(t *testing.T) {
	g := cityGraph()
	rng := rand.New(rand.NewSource(4))
	route := straightRoute(g, 5)
	pts, _ := walkRoute(g, route, 10, 2, rng)
	entries := make([]instance.Entry[geom.Point, instance.Unit], len(pts))
	for i, p := range pts {
		entries[i] = instance.Entry[geom.Point, instance.Unit]{
			Spatial:  p,
			Temporal: tempo.Instant(int64(i * 15)),
		}
	}
	tr := instance.NewTrajectory(entries, "veh-1")
	m := New(g, Config{SigmaZ: 15})
	matched, path, err := MatchTrajectory(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if matched.Data != "veh-1" {
		t.Error("data field lost")
	}
	if matched.Len() != len(pts) {
		t.Errorf("matched points = %d, want %d", matched.Len(), len(pts))
	}
	if len(path) == 0 {
		t.Error("empty path")
	}
	// Matched entries carry their edge id and calibrated location.
	for _, e := range matched.Entries {
		if d := g.DistanceToEdgeM(e.Spatial, roadnet.EdgeID(e.Value)); d > 1 {
			t.Errorf("calibrated point %g m off its edge", d)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SigmaZ != 20 || c.Beta != 200 || c.CandidateRadiusM != 80 || c.MaxCandidates != 8 {
		t.Errorf("defaults = %+v", c)
	}
}
