package mapmatch

import (
	"testing"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/roadnet"
	"st4ml/internal/tempo"
)

func TestCalibrateEvent(t *testing.T) {
	g := cityGraph()
	// An event 50 m off a road snaps onto it.
	a, b := g.EdgeEndpoints(0)
	mid := geom.Pt((a.X+b.X)/2, (a.Y+b.Y)/2)
	off := geom.Pt(mid.X, mid.Y+geom.MetersToDegreesLat(50))
	ev := instance.NewEvent(off, tempo.Instant(100), "reading", int64(1))
	c, ok := CalibrateEvent(g, ev)
	if !ok {
		t.Fatal("no calibration")
	}
	if c.DistM < 30 || c.DistM > 70 {
		t.Errorf("DistM = %g, want ~50", c.DistM)
	}
	if d := g.DistanceToEdgeM(c.Event.Entry.Spatial, c.Edge); d > 1 {
		t.Errorf("calibrated point %g m off its edge", d)
	}
	if c.Event.Data != 1 || c.Event.Entry.Value != "reading" {
		t.Error("value/data fields lost")
	}
	if c.Event.Entry.Temporal != tempo.Instant(100) {
		t.Error("time changed")
	}
}

func TestCalibrateEventsRDD(t *testing.T) {
	g := cityGraph()
	ctx := engine.New(engine.Config{Slots: 2})
	a, b := g.EdgeEndpoints(0)
	mid := geom.Pt((a.X+b.X)/2, (a.Y+b.Y)/2)
	near := instance.NewEvent(
		geom.Pt(mid.X, mid.Y+geom.MetersToDegreesLat(30)),
		tempo.Instant(1), instance.Unit{}, int64(1))
	far := instance.NewEvent(
		geom.Pt(mid.X, mid.Y+geom.MetersToDegreesLat(5000)),
		tempo.Instant(2), instance.Unit{}, int64(2))
	r := engine.Parallelize(ctx,
		[]instance.Event[geom.Point, instance.Unit, int64]{near, far}, 2)

	all := CalibrateEvents(r, g, 0).Collect()
	if len(all) != 2 {
		t.Fatalf("unbounded calibration kept %d", len(all))
	}
	capped := CalibrateEvents(r, g, 100).Collect()
	if len(capped) != 1 || capped[0].Event.Data != 1 {
		t.Fatalf("capped calibration = %+v", capped)
	}
}

func TestCalibrateEmptyGraph(t *testing.T) {
	g, err := roadnet.NewGraph(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := instance.NewEvent(geom.Pt(0, 0), tempo.Instant(1), instance.Unit{}, int64(1))
	if _, ok := CalibrateEvent(g, ev); ok {
		t.Error("empty graph should not calibrate")
	}
}
