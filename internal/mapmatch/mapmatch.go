// Package mapmatch implements Hidden-Markov-Model map matching after Newson
// & Krumm (2009) — the algorithm behind ST4ML's trajectory-to-trajectory
// calibration conversion (§3.2.2) and the road-flow case study (§6).
//
// Each GPS point's candidate states are its projections onto nearby road
// segments; emission probability falls with projection distance, transition
// probability falls with the difference between route distance and
// great-circle distance between consecutive points. Viterbi decoding picks
// the most likely segment sequence.
package mapmatch

import (
	"errors"
	"math"

	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/roadnet"
)

// Config tunes the HMM.
type Config struct {
	// SigmaZ is the GPS noise standard deviation in metres (emission).
	// 0 means 20 m.
	SigmaZ float64
	// Beta is the transition exponential scale in metres. 0 means 200 m.
	Beta float64
	// CandidateRadiusM bounds the candidate segment search. 0 means 4σ.
	CandidateRadiusM float64
	// MaxCandidates caps candidates per point. 0 means 8.
	MaxCandidates int
	// MaxRouteM bounds route search between consecutive points. 0 means
	// 10× the great-circle distance + 500 m.
	MaxRouteM float64
}

func (c Config) withDefaults() Config {
	if c.SigmaZ <= 0 {
		c.SigmaZ = 20
	}
	if c.Beta <= 0 {
		c.Beta = 200
	}
	if c.CandidateRadiusM <= 0 {
		c.CandidateRadiusM = 4 * c.SigmaZ
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 8
	}
	return c
}

// Matcher map-matches point sequences against one road graph. It is safe
// for concurrent use (the graph is immutable and matching is stateless).
type Matcher struct {
	g   *roadnet.Graph
	cfg Config
}

// New builds a matcher.
func New(g *roadnet.Graph, cfg Config) *Matcher {
	return &Matcher{g: g, cfg: cfg.withDefaults()}
}

// Result is one matched trajectory.
type Result struct {
	// EdgeIDs[i] is the matched segment of input point i (NoEdge when the
	// point had no candidate and was skipped).
	EdgeIDs []roadnet.EdgeID
	// Projected[i] is the point's projection onto its matched segment (the
	// input point itself when unmatched).
	Projected []geom.Point
	// PathEdges is the full connected traversal: matched segments plus the
	// shortest-path segments connecting consecutive matches — the input to
	// flow inference over camera-free road segments (§6).
	PathEdges []roadnet.EdgeID
}

// ErrNoMatch reports that no point of the trajectory had any candidate
// segment.
var ErrNoMatch = errors.New("mapmatch: no candidate segments for any point")

type candState struct {
	edge    roadnet.EdgeID
	proj    geom.Point
	emitLog float64
}

// Match map-matches an ordered point sequence.
func (m *Matcher) Match(points []geom.Point) (Result, error) {
	if len(points) == 0 {
		return Result{}, errors.New("mapmatch: empty trajectory")
	}
	// Candidate generation.
	cands := make([][]candState, 0, len(points))
	kept := make([]int, 0, len(points)) // original indices of points with candidates
	for i, p := range points {
		cs := m.candidatesFor(p)
		if len(cs) > 0 {
			cands = append(cands, cs)
			kept = append(kept, i)
		}
	}
	res := Result{
		EdgeIDs:   make([]roadnet.EdgeID, len(points)),
		Projected: make([]geom.Point, len(points)),
	}
	for i := range res.EdgeIDs {
		res.EdgeIDs[i] = roadnet.NoEdge
		res.Projected[i] = points[i]
	}
	if len(cands) == 0 {
		return res, ErrNoMatch
	}

	// Viterbi.
	type cell struct {
		logp float64
		prev int
	}
	prev := make([]cell, len(cands[0]))
	for j, c := range cands[0] {
		prev[j] = cell{logp: c.emitLog, prev: -1}
	}
	back := make([][]int, len(cands))
	for t := 1; t < len(cands); t++ {
		cur := make([]cell, len(cands[t]))
		back[t] = make([]int, len(cands[t]))
		pa := points[kept[t-1]]
		pb := points[kept[t]]
		gcDist := geom.HaversineMeters(pa, pb)
		routes := m.routeDistances(cands[t-1], cands[t], gcDist)
		for j := range cands[t] {
			best, bestLog := -1, math.Inf(-1)
			for i := range cands[t-1] {
				trans := m.transitionLog(routes[i][j], gcDist)
				if lp := prev[i].logp + trans; lp > bestLog {
					best, bestLog = i, lp
				}
			}
			cur[j] = cell{logp: bestLog + cands[t][j].emitLog, prev: best}
			back[t][j] = best
		}
		prev = cur
	}
	// Backtrack.
	bestEnd, bestLog := 0, math.Inf(-1)
	for j, c := range prev {
		if c.logp > bestLog {
			bestEnd, bestLog = j, c.logp
		}
	}
	choice := make([]int, len(cands))
	choice[len(cands)-1] = bestEnd
	for t := len(cands) - 1; t > 0; t-- {
		choice[t-1] = back[t][choice[t]]
	}
	for t, j := range choice {
		orig := kept[t]
		res.EdgeIDs[orig] = cands[t][j].edge
		res.Projected[orig] = cands[t][j].proj
	}
	res.PathEdges = m.connectPath(res.EdgeIDs, res.Projected)
	return res, nil
}

// candidatesFor returns the emission states of one point, capped to the
// nearest MaxCandidates.
func (m *Matcher) candidatesFor(p geom.Point) []candState {
	edges := m.g.EdgesNear(p, m.cfg.CandidateRadiusM)
	cs := make([]candState, 0, len(edges))
	for _, e := range edges {
		proj := m.g.ProjectOnEdge(p, e)
		d := geom.HaversineMeters(p, proj)
		cs = append(cs, candState{
			edge:    e,
			proj:    proj,
			emitLog: -(d * d) / (2 * m.cfg.SigmaZ * m.cfg.SigmaZ),
		})
	}
	if len(cs) > m.cfg.MaxCandidates {
		// Partial selection of nearest by emission (higher is nearer).
		for i := 0; i < m.cfg.MaxCandidates; i++ {
			best := i
			for j := i + 1; j < len(cs); j++ {
				if cs[j].emitLog > cs[best].emitLog {
					best = j
				}
			}
			cs[i], cs[best] = cs[best], cs[i]
		}
		cs = cs[:m.cfg.MaxCandidates]
	}
	return cs
}

// routeDistances computes the on-network metre distance from every state in
// a to every state in b, sharing one Dijkstra per source edge.
func (m *Matcher) routeDistances(a, b []candState, gcDist float64) [][]float64 {
	maxRoute := m.cfg.MaxRouteM
	if maxRoute <= 0 {
		maxRoute = 10*gcDist + 500
	}
	out := make([][]float64, len(a))
	targets := map[roadnet.NodeID]bool{}
	for _, cb := range b {
		targets[m.g.Edge(cb.edge).From] = true
	}
	for i, ca := range a {
		out[i] = make([]float64, len(b))
		eA := m.g.Edge(ca.edge)
		alongA := m.g.AlongEdgeM(ca.proj, ca.edge)
		remA := eA.LengthM - alongA
		dist, _ := m.g.ShortestPath(eA.To, targets, maxRoute)
		for j, cb := range b {
			if ca.edge == cb.edge {
				alongB := m.g.AlongEdgeM(cb.proj, cb.edge)
				if alongB >= alongA {
					out[i][j] = alongB - alongA
					continue
				}
			}
			eB := m.g.Edge(cb.edge)
			alongB := m.g.AlongEdgeM(cb.proj, cb.edge)
			d, ok := dist[eB.From]
			if !ok {
				out[i][j] = math.Inf(1)
				continue
			}
			out[i][j] = remA + d + alongB
		}
	}
	return out
}

// transitionLog is the Newson-Krumm transition log-probability.
func (m *Matcher) transitionLog(routeM, gcM float64) float64 {
	if math.IsInf(routeM, 1) {
		return math.Inf(-1)
	}
	return -math.Abs(routeM-gcM) / m.cfg.Beta
}

// connectPath stitches matched segments into a connected edge traversal by
// inserting shortest-path edges between consecutive distinct matches.
func (m *Matcher) connectPath(edgeIDs []roadnet.EdgeID, proj []geom.Point) []roadnet.EdgeID {
	var path []roadnet.EdgeID
	last := roadnet.NoEdge
	for _, eid := range edgeIDs {
		if eid == roadnet.NoEdge {
			continue
		}
		if eid == last {
			continue
		}
		if last != roadnet.NoEdge {
			from := m.g.Edge(last).To
			to := m.g.Edge(eid).From
			if from != to {
				dist, prevEdge := m.g.ShortestPath(from, map[roadnet.NodeID]bool{to: true}, 5000)
				if _, ok := dist[to]; ok {
					if mid, ok := m.g.PathEdges(from, to, prevEdge); ok {
						path = append(path, mid...)
					}
				}
			}
		}
		path = append(path, eid)
		last = eid
	}
	return path
}

// MatchTrajectory map-matches an instance trajectory, producing the
// calibrated trajectory (points projected onto segments, entry values set
// to the matched edge ids) and the connected path. Unmatched points are
// dropped from the output trajectory.
func MatchTrajectory[V, D any](
	m *Matcher,
	tr instance.Trajectory[V, D],
) (instance.Trajectory[int32, D], []roadnet.EdgeID, error) {
	points := make([]geom.Point, len(tr.Entries))
	for i, e := range tr.Entries {
		points[i] = e.Spatial
	}
	res, err := m.Match(points)
	if err != nil {
		return instance.Trajectory[int32, D]{}, nil, err
	}
	entries := make([]instance.Entry[geom.Point, int32], 0, len(tr.Entries))
	for i, e := range tr.Entries {
		if res.EdgeIDs[i] == roadnet.NoEdge {
			continue
		}
		entries = append(entries, instance.Entry[geom.Point, int32]{
			Spatial:  res.Projected[i],
			Temporal: e.Temporal,
			Value:    int32(res.EdgeIDs[i]),
		})
	}
	return instance.NewTrajectory(entries, tr.Data), res.PathEdges, nil
}
