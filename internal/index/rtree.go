package index

import (
	"container/heap"
	"math"
	"sort"
)

// defaultMaxEntries is the node fan-out used when callers pass 0.
const defaultMaxEntries = 16

// Item pairs a payload with its index box.
type Item[T any] struct {
	Box  Box
	Data T
}

// RTree is an in-memory R-tree over 3-d boxes (1-d and 2-d uses embed into
// degenerate 3-d boxes, see Box1/Box2). It supports STR bulk loading —
// the mode ST4ML uses for per-partition on-the-fly indexes — and Guttman
// quadratic-split insertion for incremental maintenance.
//
// RTree is not safe for concurrent mutation; concurrent readers are fine.
type RTree[T any] struct {
	root       *rnode[T]
	maxEntries int
	minEntries int
	size       int
}

type rnode[T any] struct {
	leaf    bool
	entries []rentry[T]
}

type rentry[T any] struct {
	box   Box
	child *rnode[T] // nil at leaves
	item  T         // valid at leaves
}

// NewRTree returns an empty tree with the given node fan-out (0 means the
// default of 16).
func NewRTree[T any](maxEntries int) *RTree[T] {
	if maxEntries <= 0 {
		maxEntries = defaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &RTree[T]{
		root:       &rnode[T]{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5,
	}
}

// BulkLoadSTR builds a tree from items using sort-tile-recursive packing
// (Leutenegger et al.), tiling axis 2 (time), then axis 0, then axis 1.
// STR packing yields near-optimal space utilization and is the fast path
// for the throwaway per-partition indexes of the selection stage.
func BulkLoadSTR[T any](items []Item[T], maxEntries int) *RTree[T] {
	t := NewRTree[T](maxEntries)
	if len(items) == 0 {
		return t
	}
	// Copy before packing: strPack sorts in place and callers keep their
	// slice order.
	own := make([]Item[T], len(items))
	copy(own, items)
	leaves := strPack(own, t.maxEntries)
	nodes := make([]rentry[T], len(leaves))
	for i, leafItems := range leaves {
		n := &rnode[T]{leaf: true, entries: make([]rentry[T], len(leafItems))}
		box := EmptyBox()
		for j, it := range leafItems {
			n.entries[j] = rentry[T]{box: it.Box, item: it.Data}
			box = box.Union(it.Box)
		}
		nodes[i] = rentry[T]{box: box, child: n}
	}
	// Pack upper levels until a single root remains.
	for len(nodes) > 1 {
		groups := strPackEntries(nodes, t.maxEntries)
		next := make([]rentry[T], len(groups))
		for i, g := range groups {
			n := &rnode[T]{entries: g}
			box := EmptyBox()
			for _, e := range g {
				box = box.Union(e.box)
			}
			next[i] = rentry[T]{box: box, child: n}
		}
		nodes = next
	}
	t.root = nodes[0].child
	t.size = len(items)
	return t
}

// strPack tiles items into groups of at most cap each using 3-level STR.
func strPack[T any](items []Item[T], capacity int) [][]Item[T] {
	n := len(items)
	numLeaves := (n + capacity - 1) / capacity
	// Slab counts: s2 slabs on time, then s0 on x, remainder on y.
	s := math.Cbrt(float64(numLeaves))
	slabs2 := int(math.Ceil(s))
	if slabs2 < 1 {
		slabs2 = 1
	}
	sort.Slice(items, func(i, j int) bool {
		return items[i].Box.Center()[2] < items[j].Box.Center()[2]
	})
	out := make([][]Item[T], 0, numLeaves)
	per2 := (n + slabs2 - 1) / slabs2
	for i := 0; i < n; i += per2 {
		end := i + per2
		if end > n {
			end = n
		}
		slab := items[i:end]
		slabLeaves := (len(slab) + capacity - 1) / capacity
		slabs0 := int(math.Ceil(math.Sqrt(float64(slabLeaves))))
		if slabs0 < 1 {
			slabs0 = 1
		}
		sort.Slice(slab, func(a, b int) bool {
			return slab[a].Box.Center()[0] < slab[b].Box.Center()[0]
		})
		per0 := (len(slab) + slabs0 - 1) / slabs0
		for j := 0; j < len(slab); j += per0 {
			jend := j + per0
			if jend > len(slab) {
				jend = len(slab)
			}
			run := slab[j:jend]
			sort.Slice(run, func(a, b int) bool {
				return run[a].Box.Center()[1] < run[b].Box.Center()[1]
			})
			for k := 0; k < len(run); k += capacity {
				kend := k + capacity
				if kend > len(run) {
					kend = len(run)
				}
				out = append(out, run[k:kend])
			}
		}
	}
	return out
}

// strPackEntries groups node entries for upper tree levels.
func strPackEntries[T any](entries []rentry[T], capacity int) [][]rentry[T] {
	items := make([]Item[*rnode[T]], len(entries))
	for i, e := range entries {
		items[i] = Item[*rnode[T]]{Box: e.box, Data: e.child}
	}
	groups := strPack(items, capacity)
	out := make([][]rentry[T], len(groups))
	for i, g := range groups {
		es := make([]rentry[T], len(g))
		for j, it := range g {
			es[j] = rentry[T]{box: it.Box, child: it.Data}
		}
		out[i] = es
	}
	return out
}

// Len returns the number of stored items.
func (t *RTree[T]) Len() int { return t.size }

// Bounds returns the box covering all stored items (empty when Len is 0).
func (t *RTree[T]) Bounds() Box {
	b := EmptyBox()
	for _, e := range t.root.entries {
		b = b.Union(e.box)
	}
	return b
}

// Height returns the number of levels (1 for a leaf-only tree).
func (t *RTree[T]) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

// Insert adds an item with Guttman quadratic splitting.
func (t *RTree[T]) Insert(box Box, item T) {
	leaf := t.chooseLeaf(box)
	leaf.node.entries = append(leaf.node.entries, rentry[T]{box: box, item: item})
	t.size++
	t.adjustUp(leaf, box)
}

type pathNode[T any] struct {
	node   *rnode[T]
	parent *pathNode[T]
	// entryIdx is the index of node within parent.node.entries.
	entryIdx int
}

// chooseLeaf descends to the leaf whose box needs the least enlargement,
// recording the path for the bottom-up adjustment pass.
func (t *RTree[T]) chooseLeaf(box Box) *pathNode[T] {
	cur := &pathNode[T]{node: t.root}
	for !cur.node.leaf {
		bestIdx, bestEnl, bestMargin := -1, math.Inf(1), math.Inf(1)
		for i, e := range cur.node.entries {
			enl := e.box.Union(box).Margin() - e.box.Margin()
			if enl < bestEnl || (enl == bestEnl && e.box.Margin() < bestMargin) {
				bestIdx, bestEnl, bestMargin = i, enl, e.box.Margin()
			}
		}
		cur = &pathNode[T]{
			node:     cur.node.entries[bestIdx].child,
			parent:   cur,
			entryIdx: bestIdx,
		}
	}
	return cur
}

// adjustUp grows ancestor boxes and splits overflowing nodes bottom-up.
func (t *RTree[T]) adjustUp(path *pathNode[T], box Box) {
	for p := path; p != nil; p = p.parent {
		if p.parent != nil {
			pe := &p.parent.node.entries[p.entryIdx]
			pe.box = pe.box.Union(box)
		}
		if len(p.node.entries) > t.maxEntries {
			t.splitNode(p)
		}
	}
}

// splitNode performs a quadratic split of p.node in place, attaching the new
// sibling to the parent (creating a new root when p is the root).
func (t *RTree[T]) splitNode(p *pathNode[T]) {
	n := p.node
	entries := n.entries
	// Quadratic pick-seeds: the pair wasting the most space.
	seedA, seedB, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].box.Union(entries[j].box).Margin() -
				entries[i].box.Margin() - entries[j].box.Margin()
			if d > worst {
				seedA, seedB, worst = i, j, d
			}
		}
	}
	groupA := []rentry[T]{entries[seedA]}
	groupB := []rentry[T]{entries[seedB]}
	boxA, boxB := entries[seedA].box, entries[seedB].box
	rest := make([]rentry[T], 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for _, e := range rest {
		switch {
		case len(groupA) >= t.maxEntries-t.minEntries+1:
			groupB = append(groupB, e)
			boxB = boxB.Union(e.box)
		case len(groupB) >= t.maxEntries-t.minEntries+1:
			groupA = append(groupA, e)
			boxA = boxA.Union(e.box)
		default:
			enlA := boxA.Union(e.box).Margin() - boxA.Margin()
			enlB := boxB.Union(e.box).Margin() - boxB.Margin()
			if enlA <= enlB {
				groupA = append(groupA, e)
				boxA = boxA.Union(e.box)
			} else {
				groupB = append(groupB, e)
				boxB = boxB.Union(e.box)
			}
		}
	}
	n.entries = groupA
	sibling := &rnode[T]{leaf: n.leaf, entries: groupB}
	if p.parent == nil {
		newRoot := &rnode[T]{entries: []rentry[T]{
			{box: boxA, child: n},
			{box: boxB, child: sibling},
		}}
		t.root = newRoot
		return
	}
	p.parent.node.entries[p.entryIdx].box = boxA
	p.parent.node.entries = append(p.parent.node.entries,
		rentry[T]{box: boxB, child: sibling})
}

// Search returns all items whose box intersects query.
func (t *RTree[T]) Search(query Box) []T {
	var out []T
	t.SearchFunc(query, func(item T, _ Box) bool {
		out = append(out, item)
		return true
	})
	return out
}

// SearchFunc visits every item whose box intersects query. Returning false
// from fn stops the traversal early.
func (t *RTree[T]) SearchFunc(query Box, fn func(item T, box Box) bool) {
	searchNode(t.root, query, fn)
}

func searchNode[T any](n *rnode[T], query Box, fn func(T, Box) bool) bool {
	for _, e := range n.entries {
		if !e.box.Intersects(query) {
			continue
		}
		if n.leaf {
			if !fn(e.item, e.box) {
				return false
			}
		} else if !searchNode(e.child, query, fn) {
			return false
		}
	}
	return true
}

// Count returns the number of items whose box intersects query without
// materializing them.
func (t *RTree[T]) Count(query Box) int {
	c := 0
	t.SearchFunc(query, func(T, Box) bool { c++; return true })
	return c
}

// KNN returns up to k items nearest to point p by box distance, using
// best-first traversal. Ties are broken arbitrarily.
func (t *RTree[T]) KNN(p [Dims]float64, k int) []T {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &knnHeap[T]{}
	heap.Push(pq, knnEntry[T]{dist: t.Bounds().DistanceSq(p), node: t.root})
	out := make([]T, 0, k)
	for pq.Len() > 0 && len(out) < k {
		cur := heap.Pop(pq).(knnEntry[T])
		if cur.node == nil {
			out = append(out, cur.item)
			continue
		}
		for _, e := range cur.node.entries {
			ke := knnEntry[T]{dist: e.box.DistanceSq(p)}
			if cur.node.leaf {
				ke.item = e.item
			} else {
				ke.node = e.child
			}
			heap.Push(pq, ke)
		}
	}
	return out
}

type knnEntry[T any] struct {
	dist float64
	node *rnode[T] // nil for item entries
	item T
}

type knnHeap[T any] []knnEntry[T]

func (h knnHeap[T]) Len() int           { return len(h) }
func (h knnHeap[T]) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h knnHeap[T]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *knnHeap[T]) Push(x any)        { *h = append(*h, x.(knnEntry[T])) }
func (h *knnHeap[T]) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
