package index

import (
	"st4ml/internal/geom"
)

// QuadTree is a point-region quadtree over 2-d points: leaves hold up to a
// capacity of points and split into four quadrants on overflow. It is the
// classic alternative to the R-tree for point-heavy per-partition indexes
// (the paper's §3.1 quad-tree partitioner uses the same decomposition).
//
// QuadTree is not safe for concurrent mutation.
type QuadTree[T any] struct {
	root     *qnode[T]
	capacity int
	maxDepth int
	size     int
}

type qpoint[T any] struct {
	p    geom.Point
	item T
}

type qnode[T any] struct {
	bounds geom.MBR
	points []qpoint[T] // non-nil iff leaf
	kids   *[4]*qnode[T]
	depth  int
}

// NewQuadTree creates a tree over bounds with the given leaf capacity
// (0 means 16). Points outside bounds clamp into the nearest border leaf.
func NewQuadTree[T any](bounds geom.MBR, capacity int) *QuadTree[T] {
	if capacity <= 0 {
		capacity = 16
	}
	return &QuadTree[T]{
		root:     &qnode[T]{bounds: bounds, points: []qpoint[T]{}},
		capacity: capacity,
		maxDepth: 24,
	}
}

// Len returns the number of stored points.
func (q *QuadTree[T]) Len() int { return q.size }

// Insert adds a point with its payload.
func (q *QuadTree[T]) Insert(p geom.Point, item T) {
	p = clampPoint(p, q.root.bounds)
	q.insert(q.root, qpoint[T]{p: p, item: item})
	q.size++
}

func clampPoint(p geom.Point, b geom.MBR) geom.Point {
	if p.X < b.MinX {
		p.X = b.MinX
	}
	if p.X > b.MaxX {
		p.X = b.MaxX
	}
	if p.Y < b.MinY {
		p.Y = b.MinY
	}
	if p.Y > b.MaxY {
		p.Y = b.MaxY
	}
	return p
}

func (q *QuadTree[T]) insert(n *qnode[T], qp qpoint[T]) {
	for {
		if n.points != nil {
			n.points = append(n.points, qp)
			if len(n.points) > q.capacity && n.depth < q.maxDepth {
				q.split(n)
			}
			return
		}
		n = n.kids[quadrantOf(n.bounds, qp.p)]
	}
}

func quadrantOf(b geom.MBR, p geom.Point) int {
	midX := (b.MinX + b.MaxX) / 2
	midY := (b.MinY + b.MaxY) / 2
	qd := 0
	if p.X >= midX {
		qd |= 1
	}
	if p.Y >= midY {
		qd |= 2
	}
	return qd
}

func quadrantBounds(b geom.MBR, qd int) geom.MBR {
	midX := (b.MinX + b.MaxX) / 2
	midY := (b.MinY + b.MaxY) / 2
	out := b
	if qd&1 == 0 {
		out.MaxX = midX
	} else {
		out.MinX = midX
	}
	if qd&2 == 0 {
		out.MaxY = midY
	} else {
		out.MinY = midY
	}
	return out
}

func (q *QuadTree[T]) split(n *qnode[T]) {
	var kids [4]*qnode[T]
	for qd := 0; qd < 4; qd++ {
		kids[qd] = &qnode[T]{
			bounds: quadrantBounds(n.bounds, qd),
			points: []qpoint[T]{},
			depth:  n.depth + 1,
		}
	}
	pts := n.points
	n.points = nil
	n.kids = &kids
	for _, qp := range pts {
		q.insert(kids[quadrantOf(n.bounds, qp.p)], qp)
	}
}

// Search returns the payloads of all points inside b (borders inclusive).
func (q *QuadTree[T]) Search(b geom.MBR) []T {
	var out []T
	q.SearchFunc(b, func(_ geom.Point, item T) bool {
		out = append(out, item)
		return true
	})
	return out
}

// SearchFunc visits every point inside b; returning false stops early.
func (q *QuadTree[T]) SearchFunc(b geom.MBR, fn func(p geom.Point, item T) bool) {
	searchQNode(q.root, b, fn)
}

func searchQNode[T any](n *qnode[T], b geom.MBR, fn func(geom.Point, T) bool) bool {
	if !n.bounds.Intersects(b) {
		return true
	}
	if n.points != nil {
		for _, qp := range n.points {
			if b.ContainsPoint(qp.p) {
				if !fn(qp.p, qp.item) {
					return false
				}
			}
		}
		return true
	}
	for _, kid := range n.kids {
		if !searchQNode(kid, b, fn) {
			return false
		}
	}
	return true
}

// Depth returns the maximum leaf depth (0 for a root-only tree).
func (q *QuadTree[T]) Depth() int {
	max := 0
	var walk func(n *qnode[T])
	walk = func(n *qnode[T]) {
		if n.depth > max {
			max = n.depth
		}
		if n.kids != nil {
			for _, kid := range n.kids {
				walk(kid)
			}
		}
	}
	walk(q.root)
	return max
}

// Leaves returns the bounds of every leaf node — the decomposition the
// quadtree partitioner derives its partitions from.
func (q *QuadTree[T]) Leaves() []geom.MBR {
	var out []geom.MBR
	var walk func(n *qnode[T])
	walk = func(n *qnode[T]) {
		if n.points != nil {
			out = append(out, n.bounds)
			return
		}
		for _, kid := range n.kids {
			walk(kid)
		}
	}
	walk(q.root)
	return out
}
