package index

import (
	"sort"

	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

// ZCurve2D maps 2-d points in a bounded domain to a Z-order (Morton) key at
// a fixed resolution. The GeoMesa-like baseline uses it as its entry-level
// spatial index (standing in for GeoMesa's XZ2 curve): entries are sorted by
// key on disk and a range query is answered by scanning the key ranges whose
// cells intersect the query window.
type ZCurve2D struct {
	domain geom.MBR
	bits   uint // bits per dimension, <= 31
}

// NewZCurve2D creates a curve over domain with the given per-dimension
// resolution in bits (clamped to [1, 31]).
func NewZCurve2D(domain geom.MBR, bits uint) *ZCurve2D {
	if bits < 1 {
		bits = 1
	}
	if bits > 31 {
		bits = 31
	}
	return &ZCurve2D{domain: domain, bits: bits}
}

// Bits returns the per-dimension resolution.
func (z *ZCurve2D) Bits() uint { return z.bits }

// cells returns the number of grid cells per dimension.
func (z *ZCurve2D) cells() uint64 { return 1 << z.bits }

// Key returns the Morton key of p. Points outside the domain clamp to the
// border cells.
func (z *ZCurve2D) Key(p geom.Point) uint64 {
	ix := z.cellIndex(p.X, z.domain.MinX, z.domain.MaxX)
	iy := z.cellIndex(p.Y, z.domain.MinY, z.domain.MaxY)
	return interleave2(ix, iy)
}

func (z *ZCurve2D) cellIndex(v, lo, hi float64) uint64 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f >= 1 {
		f = 1 - 1e-12
	}
	return uint64(f * float64(z.cells()))
}

// CellBox returns the spatial extent of the cell holding key k.
func (z *ZCurve2D) CellBox(k uint64) geom.MBR {
	ix, iy := deinterleave2(k)
	w := z.domain.Width() / float64(z.cells())
	h := z.domain.Height() / float64(z.cells())
	return geom.MBR{
		MinX: z.domain.MinX + float64(ix)*w,
		MinY: z.domain.MinY + float64(iy)*h,
		MaxX: z.domain.MinX + float64(ix+1)*w,
		MaxY: z.domain.MinY + float64(iy+1)*h,
	}
}

// KeyRange is a closed interval of curve keys.
type KeyRange struct {
	Lo, Hi uint64
}

// Ranges returns a sorted, merged set of key ranges covering every cell that
// intersects query. It recursively subdivides the quadrant hierarchy: fully
// covered quadrants emit one contiguous range, partially covered ones
// recurse, down to maxRecursion levels after which partial quadrants are
// emitted whole (a superset, as range scans tolerate false positives).
func (z *ZCurve2D) Ranges(query geom.MBR, maxRecursion uint) []KeyRange {
	if maxRecursion == 0 || maxRecursion > z.bits {
		maxRecursion = z.bits
	}
	query = query.Intersection(z.domain)
	if query.IsEmpty() {
		return nil
	}
	var out []KeyRange
	var walk func(prefix uint64, level uint, cell geom.MBR)
	walk = func(prefix uint64, level uint, cell geom.MBR) {
		if !cell.Intersects(query) {
			return
		}
		span := uint64(1) << (2 * (z.bits - level)) // keys under this quadrant
		base := prefix << (2 * (z.bits - level))
		if query.Contains(cell) || level >= maxRecursion {
			out = append(out, KeyRange{Lo: base, Hi: base + span - 1})
			return
		}
		midX := (cell.MinX + cell.MaxX) / 2
		midY := (cell.MinY + cell.MaxY) / 2
		// Quadrant order must follow Morton order: (y,x) bit pairs.
		walk(prefix<<2|0, level+1, geom.MBR{MinX: cell.MinX, MinY: cell.MinY, MaxX: midX, MaxY: midY})
		walk(prefix<<2|1, level+1, geom.MBR{MinX: midX, MinY: cell.MinY, MaxX: cell.MaxX, MaxY: midY})
		walk(prefix<<2|2, level+1, geom.MBR{MinX: cell.MinX, MinY: midY, MaxX: midX, MaxY: cell.MaxY})
		walk(prefix<<2|3, level+1, geom.MBR{MinX: midX, MinY: midY, MaxX: cell.MaxX, MaxY: cell.MaxY})
	}
	walk(0, 0, z.domain)
	return mergeRanges(out)
}

// mergeRanges sorts and coalesces adjacent or overlapping ranges.
func mergeRanges(rs []KeyRange) []KeyRange {
	if len(rs) == 0 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// interleave2 interleaves the low 31 bits of x and y: y gets odd bit
// positions, x even — matching the quadrant order in Ranges.
func interleave2(x, y uint64) uint64 {
	return spread(x) | spread(y)<<1
}

func deinterleave2(k uint64) (x, y uint64) {
	return compact(k), compact(k >> 1)
}

// spread inserts a zero bit between every bit of v.
func spread(v uint64) uint64 {
	v &= 0x7fffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact is the inverse of spread.
func compact(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return v
}

// ZCurve3D extends the 2-d curve with a time dimension by pairing a 2-d
// Morton key with a coarse time bucket, mirroring GeoMesa's (time-bin,
// XZ2-key) composite index layout. Keys sort first by time bucket, then by
// space.
type ZCurve3D struct {
	space  *ZCurve2D
	window tempo.Duration
	binSec int64
}

// NewZCurve3D creates a composite curve over the spatial domain and time
// window, bucketing time into bins of binSec seconds.
func NewZCurve3D(domain geom.MBR, window tempo.Duration, bits uint, binSec int64) *ZCurve3D {
	if binSec < 1 {
		binSec = 1
	}
	return &ZCurve3D{space: NewZCurve2D(domain, bits), window: window, binSec: binSec}
}

// Key returns the composite key of a point at instant t.
func (z *ZCurve3D) Key(p geom.Point, t int64) uint64 {
	bin := z.timeBin(t)
	return bin<<(2*z.space.bits) | z.space.Key(p)
}

func (z *ZCurve3D) timeBin(t int64) uint64 {
	if t < z.window.Start {
		return 0
	}
	return uint64((t - z.window.Start) / z.binSec)
}

// Ranges returns composite key ranges covering the ST query window.
func (z *ZCurve3D) Ranges(space geom.MBR, dur tempo.Duration, maxRecursion uint) []KeyRange {
	spatial := z.space.Ranges(space, maxRecursion)
	if len(spatial) == 0 {
		return nil
	}
	dur = dur.Intersection(z.window)
	if dur.IsEmpty() {
		return nil
	}
	loBin, hiBin := z.timeBin(dur.Start), z.timeBin(dur.End)
	shift := 2 * z.space.bits
	out := make([]KeyRange, 0, int(hiBin-loBin+1)*len(spatial))
	for bin := loBin; bin <= hiBin; bin++ {
		for _, r := range spatial {
			out = append(out, KeyRange{Lo: bin<<shift | r.Lo, Hi: bin<<shift | r.Hi})
		}
	}
	return mergeRanges(out)
}
