// Package index provides the in-memory spatial and spatio-temporal indexes
// used across ST4ML: an R-tree (STR bulk-loaded and dynamically insertable,
// used for per-partition selection §3.1, conversion acceleration §4.2, and
// map-matching candidate search), and a Z-order/XZ-style space-filling curve
// used by the GeoMesa-like baseline's entry-level on-disk index.
package index

import (
	"math"

	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

// Dims is the dimensionality of index boxes. Lower-dimensional indexes
// (1-d durations, 2-d space) embed into 3-d boxes with zeroed unused axes.
const Dims = 3

// Box is an axis-aligned 3-d box. Axis 0 and 1 are spatial (x = lon,
// y = lat); axis 2 is time in seconds. A Box with Min[i] > Max[i] on any
// axis is empty.
type Box struct {
	Min, Max [Dims]float64
}

// EmptyBox returns the identity element for Union.
func EmptyBox() Box {
	var b Box
	for i := 0; i < Dims; i++ {
		b.Min[i] = math.Inf(1)
		b.Max[i] = math.Inf(-1)
	}
	return b
}

// Box1 embeds a temporal interval on the time axis; spatial axes are zero.
func Box1(d tempo.Duration) Box {
	var b Box
	b.Min[2], b.Max[2] = float64(d.Start), float64(d.End)
	return b
}

// Box2 embeds a spatial MBR; the time axis is zero.
func Box2(m geom.MBR) Box {
	var b Box
	b.Min[0], b.Max[0] = m.MinX, m.MaxX
	b.Min[1], b.Max[1] = m.MinY, m.MaxY
	return b
}

// Box3 combines a spatial MBR and a temporal interval into an ST box.
func Box3(m geom.MBR, d tempo.Duration) Box {
	b := Box2(m)
	b.Min[2], b.Max[2] = float64(d.Start), float64(d.End)
	return b
}

// BoxOfPoint embeds a 2-d point and instant as a degenerate box.
func BoxOfPoint(p geom.Point, t int64) Box {
	return Box3(p.MBR(), tempo.Instant(t))
}

// Spatial extracts the spatial MBR from the box.
func (b Box) Spatial() geom.MBR {
	return geom.MBR{MinX: b.Min[0], MinY: b.Min[1], MaxX: b.Max[0], MaxY: b.Max[1]}
}

// Temporal extracts the time interval from the box.
func (b Box) Temporal() tempo.Duration {
	return tempo.New(int64(b.Min[2]), int64(b.Max[2]))
}

// IsEmpty reports whether the box contains no points.
func (b Box) IsEmpty() bool {
	for i := 0; i < Dims; i++ {
		if b.Min[i] > b.Max[i] {
			return true
		}
	}
	return false
}

// Intersects reports whether the boxes share at least one point.
func (b Box) Intersects(o Box) bool {
	for i := 0; i < Dims; i++ {
		if b.Min[i] > o.Max[i] || o.Min[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// Contains reports whether o lies entirely inside b.
func (b Box) Contains(o Box) bool {
	for i := 0; i < Dims; i++ {
		if o.Min[i] < b.Min[i] || o.Max[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest box covering both operands.
func (b Box) Union(o Box) Box {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	var u Box
	for i := 0; i < Dims; i++ {
		u.Min[i] = math.Min(b.Min[i], o.Min[i])
		u.Max[i] = math.Max(b.Max[i], o.Max[i])
	}
	return u
}

// Volume returns the product of the extents (0 for empty boxes). Degenerate
// axes contribute factor 0, so callers comparing enlargement should prefer
// Margin for point data.
func (b Box) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	v := 1.0
	for i := 0; i < Dims; i++ {
		v *= b.Max[i] - b.Min[i]
	}
	return v
}

// Margin returns the sum of the extents (the L1 "perimeter"), a robust
// enlargement metric for point-heavy data.
func (b Box) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	var s float64
	for i := 0; i < Dims; i++ {
		s += b.Max[i] - b.Min[i]
	}
	return s
}

// Center returns the box midpoint on each axis.
func (b Box) Center() [Dims]float64 {
	var c [Dims]float64
	for i := 0; i < Dims; i++ {
		c[i] = (b.Min[i] + b.Max[i]) / 2
	}
	return c
}

// DistanceSq returns the squared Euclidean distance from point p to the box
// (0 if inside).
func (b Box) DistanceSq(p [Dims]float64) float64 {
	var d float64
	for i := 0; i < Dims; i++ {
		if p[i] < b.Min[i] {
			d += (b.Min[i] - p[i]) * (b.Min[i] - p[i])
		} else if p[i] > b.Max[i] {
			d += (p[i] - b.Max[i]) * (p[i] - b.Max[i])
		}
	}
	return d
}
