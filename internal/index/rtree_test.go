package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

func randomItems(rng *rand.Rand, n int) []Item[int] {
	items := make([]Item[int], n)
	for i := range items {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		t := rng.Int63n(1_000_000)
		b := Box3(geom.Box(p.X, p.Y, p.X+rng.Float64()*5, p.Y+rng.Float64()*5),
			tempo.New(t, t+rng.Int63n(5000)))
		items[i] = Item[int]{Box: b, Data: i}
	}
	return items
}

// bruteSearch returns data of items intersecting q, sorted.
func bruteSearch(items []Item[int], q Box) []int {
	var out []int
	for _, it := range items {
		if it.Box.Intersects(q) {
			out = append(out, it.Data)
		}
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBoxBasics(t *testing.T) {
	b := Box3(geom.Box(0, 0, 10, 10), tempo.New(0, 100))
	if b.IsEmpty() {
		t.Fatal("box should not be empty")
	}
	if got := b.Spatial(); got != geom.Box(0, 0, 10, 10) {
		t.Errorf("Spatial = %v", got)
	}
	if got := b.Temporal(); got != tempo.New(0, 100) {
		t.Errorf("Temporal = %v", got)
	}
	if v := b.Volume(); v != 10*10*100 {
		t.Errorf("Volume = %g", v)
	}
	if m := b.Margin(); m != 120 {
		t.Errorf("Margin = %g", m)
	}
	e := EmptyBox()
	if !e.IsEmpty() || e.Volume() != 0 {
		t.Error("EmptyBox misbehaves")
	}
	if got := e.Union(b); got != b {
		t.Errorf("empty union = %v", got)
	}
}

func TestBoxDistanceSq(t *testing.T) {
	b := Box2(geom.Box(0, 0, 10, 10))
	if d := b.DistanceSq([3]float64{5, 5, 0}); d != 0 {
		t.Errorf("inside = %g", d)
	}
	if d := b.DistanceSq([3]float64{13, 14, 0}); d != 25 {
		t.Errorf("outside = %g", d)
	}
}

func TestBulkLoadSearchMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 3000)
	tree := BulkLoadSTR(items, 16)
	if tree.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(items))
	}
	for q := 0; q < 50; q++ {
		query := Box3(
			geom.Box(rng.Float64()*1000, rng.Float64()*1000,
				rng.Float64()*1000, rng.Float64()*1000),
			tempo.New(rng.Int63n(1_000_000), rng.Int63n(1_000_000)))
		got := tree.Search(query)
		sort.Ints(got)
		want := bruteSearch(items, query)
		if !equalInts(got, want) {
			t.Fatalf("query %d: got %d items, want %d", q, len(got), len(want))
		}
	}
}

func TestInsertSearchMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 2000)
	tree := NewRTree[int](8)
	for _, it := range items {
		tree.Insert(it.Box, it.Data)
	}
	if tree.Len() != len(items) {
		t.Fatalf("Len = %d", tree.Len())
	}
	for q := 0; q < 50; q++ {
		query := Box3(
			geom.Box(rng.Float64()*1000, rng.Float64()*1000,
				rng.Float64()*1000, rng.Float64()*1000),
			tempo.New(rng.Int63n(1_000_000), rng.Int63n(1_000_000)))
		got := tree.Search(query)
		sort.Ints(got)
		want := bruteSearch(items, query)
		if !equalInts(got, want) {
			t.Fatalf("query %d: got %d items, want %d", q, len(got), len(want))
		}
	}
}

func TestMixedBulkThenInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randomItems(rng, 1000)
	tree := BulkLoadSTR(items[:500], 8)
	for _, it := range items[500:] {
		tree.Insert(it.Box, it.Data)
	}
	query := Box3(geom.Box(100, 100, 900, 900), tempo.New(0, 1_000_000))
	got := tree.Search(query)
	sort.Ints(got)
	if want := bruteSearch(items, query); !equalInts(got, want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}

func TestEmptyTree(t *testing.T) {
	tree := NewRTree[string](0)
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Error("fresh tree should be empty with height 1")
	}
	if got := tree.Search(Box2(geom.Box(0, 0, 1, 1))); len(got) != 0 {
		t.Errorf("search on empty = %v", got)
	}
	if got := tree.KNN([3]float64{0, 0, 0}, 5); got != nil {
		t.Errorf("knn on empty = %v", got)
	}
	empty := BulkLoadSTR[string](nil, 4)
	if empty.Len() != 0 {
		t.Error("bulk load of nil should be empty")
	}
}

func TestSearchFuncEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree := BulkLoadSTR(randomItems(rng, 500), 8)
	count := 0
	tree.SearchFunc(tree.Bounds(), func(int, Box) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 800)
	tree := BulkLoadSTR(items, 8)
	q := Box3(geom.Box(0, 0, 500, 500), tempo.New(0, 500_000))
	if got, want := tree.Count(q), len(bruteSearch(items, q)); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := make([]Item[int], 500)
	for i := range items {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		items[i] = Item[int]{Box: Box2(p.MBR()), Data: i}
	}
	tree := BulkLoadSTR(items, 8)
	for q := 0; q < 20; q++ {
		pt := [3]float64{rng.Float64() * 100, rng.Float64() * 100, 0}
		k := 1 + rng.Intn(10)
		got := tree.KNN(pt, k)
		if len(got) != k {
			t.Fatalf("KNN returned %d, want %d", len(got), k)
		}
		// The distance of the worst returned item must not exceed the k-th
		// smallest brute-force distance.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Box.DistanceSq(pt)
		}
		sort.Float64s(dists)
		kth := dists[k-1]
		for _, g := range got {
			if d := items[g].Box.DistanceSq(pt); d > kth+1e-9 {
				t.Fatalf("KNN item %d at distÂ²=%g beyond kth=%g", g, d, kth)
			}
		}
	}
}

func TestHeightGrowth(t *testing.T) {
	tree := NewRTree[int](4)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		tree.Insert(Box2(p.MBR()), i)
	}
	if h := tree.Height(); h < 3 {
		t.Errorf("500 items at fanout 4 should give height >= 3, got %d", h)
	}
	// Every item is still findable.
	if got := tree.Count(tree.Bounds()); got != 500 {
		t.Errorf("Count(bounds) = %d", got)
	}
}

func TestBulkLoadUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := randomItems(rng, 10000)
	tree := BulkLoadSTR(items, 16)
	// STR packing should give a shallow tree: ceil(log_16(10000/16)) + 1.
	if h := tree.Height(); h > 4 {
		t.Errorf("STR height = %d, want <= 4", h)
	}
}

func TestDegenerate1DBoxes(t *testing.T) {
	// Pure temporal index (Box1): spatial axes all zero.
	var items []Item[int]
	for i := 0; i < 100; i++ {
		items = append(items, Item[int]{
			Box:  Box1(tempo.New(int64(i*10), int64(i*10+9))),
			Data: i,
		})
	}
	tree := BulkLoadSTR(items, 4)
	got := tree.Search(Box1(tempo.New(95, 125)))
	sort.Ints(got)
	if !equalInts(got, []int{9, 10, 11, 12}) {
		t.Errorf("temporal search = %v", got)
	}
}

func TestBoundsCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := randomItems(rng, 300)
	tree := BulkLoadSTR(items, 8)
	b := tree.Bounds()
	for _, it := range items {
		if !b.Contains(it.Box) {
			t.Fatalf("bounds %v does not contain %v", b, it.Box)
		}
	}
}

func TestInsertDuplicateBoxes(t *testing.T) {
	tree := NewRTree[int](4)
	b := Box2(geom.Box(5, 5, 5, 5))
	for i := 0; i < 50; i++ {
		tree.Insert(b, i)
	}
	if got := len(tree.Search(b)); got != 50 {
		t.Errorf("duplicate search = %d", got)
	}
}

func TestBoxCenter(t *testing.T) {
	b := Box3(geom.Box(0, 0, 10, 20), tempo.New(100, 200))
	c := b.Center()
	if c[0] != 5 || c[1] != 10 || c[2] != 150 {
		t.Errorf("Center = %v", c)
	}
}

func TestMarginMonotonicUnderUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		a := Box2(geom.Box(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10))
		b := Box2(geom.Box(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10))
		u := a.Union(b)
		if u.Margin()+1e-12 < math.Max(a.Margin(), b.Margin()) {
			t.Fatalf("union margin shrank: %v %v", a, b)
		}
		if !u.Contains(a) || !u.Contains(b) {
			t.Fatalf("union does not contain operands")
		}
	}
}
