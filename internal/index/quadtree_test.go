package index

import (
	"math/rand"
	"sort"
	"testing"

	"st4ml/internal/geom"
)

func TestQuadTreeSearchMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := geom.Box(0, 0, 100, 100)
	q := NewQuadTree[int](bounds, 8)
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		q.Insert(pts[i], i)
	}
	if q.Len() != 2000 {
		t.Fatalf("Len = %d", q.Len())
	}
	for trial := 0; trial < 50; trial++ {
		b := geom.Box(rng.Float64()*100, rng.Float64()*100,
			rng.Float64()*100, rng.Float64()*100)
		got := q.Search(b)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if b.ContainsPoint(p) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: content mismatch", trial)
			}
		}
	}
}

func TestQuadTreeSplitsOnOverflow(t *testing.T) {
	q := NewQuadTree[int](geom.Box(0, 0, 10, 10), 4)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		q.Insert(geom.Pt(rng.Float64()*10, rng.Float64()*10), i)
	}
	if q.Depth() == 0 {
		t.Error("tree should have split")
	}
	leaves := q.Leaves()
	if len(leaves) < 4 {
		t.Errorf("leaves = %d", len(leaves))
	}
	// Leaves tile the bounds: areas sum to the whole.
	var area float64
	for _, l := range leaves {
		area += l.Area()
	}
	if diff := area - 100; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("leaf area = %g, want 100", area)
	}
}

func TestQuadTreeDuplicatePoints(t *testing.T) {
	// Identical points cannot be separated by splitting; maxDepth caps the
	// recursion and the leaf just grows.
	q := NewQuadTree[int](geom.Box(0, 0, 1, 1), 2)
	for i := 0; i < 50; i++ {
		q.Insert(geom.Pt(0.5, 0.5), i)
	}
	got := q.Search(geom.Box(0.4, 0.4, 0.6, 0.6))
	if len(got) != 50 {
		t.Errorf("duplicates found = %d", len(got))
	}
}

func TestQuadTreeClampsOutOfBounds(t *testing.T) {
	q := NewQuadTree[string](geom.Box(0, 0, 10, 10), 4)
	q.Insert(geom.Pt(-5, 20), "clamped")
	got := q.Search(geom.Box(0, 9, 1, 10))
	if len(got) != 1 || got[0] != "clamped" {
		t.Errorf("clamped search = %v", got)
	}
}

func TestQuadTreeEarlyStop(t *testing.T) {
	q := NewQuadTree[int](geom.Box(0, 0, 10, 10), 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		q.Insert(geom.Pt(rng.Float64()*10, rng.Float64()*10), i)
	}
	visited := 0
	q.SearchFunc(geom.Box(0, 0, 10, 10), func(geom.Point, int) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Errorf("early stop visited %d", visited)
	}
}

func TestQuadTreeEmpty(t *testing.T) {
	q := NewQuadTree[int](geom.Box(0, 0, 1, 1), 0)
	if q.Len() != 0 || q.Depth() != 0 {
		t.Error("fresh tree state")
	}
	if got := q.Search(geom.Box(0, 0, 1, 1)); len(got) != 0 {
		t.Errorf("empty search = %v", got)
	}
	if leaves := q.Leaves(); len(leaves) != 1 {
		t.Errorf("empty leaves = %d", len(leaves))
	}
}
