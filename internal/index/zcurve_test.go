package index

import (
	"math/rand"
	"testing"

	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := rng.Uint64() & 0x7fffffff
		y := rng.Uint64() & 0x7fffffff
		gx, gy := deinterleave2(interleave2(x, y))
		if gx != x || gy != y {
			t.Fatalf("round trip failed: (%d,%d) -> (%d,%d)", x, y, gx, gy)
		}
	}
}

func TestZCurveKeyLocality(t *testing.T) {
	z := NewZCurve2D(geom.Box(0, 0, 100, 100), 4) // 16 cells/dim, 6.25 wide
	// Same cell -> same key.
	if z.Key(geom.Pt(10.1, 10.1)) != z.Key(geom.Pt(10.2, 10.2)) {
		t.Error("nearby points in one cell should share a key")
	}
	// Distinct cells -> distinct keys.
	if z.Key(geom.Pt(1, 1)) == z.Key(geom.Pt(99, 99)) {
		t.Error("far points should have different keys")
	}
}

func TestZCurveKeyInCellBox(t *testing.T) {
	z := NewZCurve2D(geom.Box(-10, -10, 10, 10), 6)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		p := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		cell := z.CellBox(z.Key(p))
		if !cell.Buffer(1e-9).ContainsPoint(p) {
			t.Fatalf("point %v not in its cell %v", p, cell)
		}
	}
}

func TestZCurveRangesCoverQuery(t *testing.T) {
	z := NewZCurve2D(geom.Box(0, 0, 100, 100), 8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		q := geom.Box(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		ranges := z.Ranges(q, 6)
		// Every point inside the query must fall in some range.
		for j := 0; j < 50; j++ {
			p := geom.Pt(
				q.MinX+rng.Float64()*q.Width(),
				q.MinY+rng.Float64()*q.Height())
			key := z.Key(p)
			found := false
			for _, r := range ranges {
				if key >= r.Lo && key <= r.Hi {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("point %v key %d not covered by %d ranges for query %v",
					p, key, len(ranges), q)
			}
		}
	}
}

func TestZCurveRangesSortedAndMerged(t *testing.T) {
	z := NewZCurve2D(geom.Box(0, 0, 100, 100), 8)
	ranges := z.Ranges(geom.Box(10, 10, 60, 60), 6)
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo <= ranges[i-1].Hi+1 {
			t.Fatalf("ranges not merged/sorted at %d: %v %v", i, ranges[i-1], ranges[i])
		}
	}
}

func TestZCurveFullDomainQuery(t *testing.T) {
	z := NewZCurve2D(geom.Box(0, 0, 100, 100), 8)
	ranges := z.Ranges(geom.Box(0, 0, 100, 100), 6)
	if len(ranges) != 1 {
		t.Fatalf("full-domain query should give one range, got %v", ranges)
	}
	if ranges[0].Lo != 0 || ranges[0].Hi != 1<<16-1 {
		t.Errorf("full range = %v", ranges[0])
	}
}

func TestZCurveDisjointQuery(t *testing.T) {
	z := NewZCurve2D(geom.Box(0, 0, 100, 100), 8)
	if got := z.Ranges(geom.Box(200, 200, 300, 300), 6); got != nil {
		t.Errorf("disjoint query = %v", got)
	}
}

func TestZCurve3DKeysOrderByTime(t *testing.T) {
	window := tempo.New(0, 86400)
	z := NewZCurve3D(geom.Box(0, 0, 100, 100), window, 8, 3600)
	p := geom.Pt(50, 50)
	k1 := z.Key(p, 100)  // bin 0
	k2 := z.Key(p, 7200) // bin 2
	if k1 >= k2 {
		t.Errorf("later time bin should yield larger key: %d vs %d", k1, k2)
	}
}

func TestZCurve3DRangesCover(t *testing.T) {
	window := tempo.New(0, 86400)
	z := NewZCurve3D(geom.Box(0, 0, 100, 100), window, 8, 3600)
	rng := rand.New(rand.NewSource(4))
	qs := geom.Box(20, 20, 70, 70)
	qt := tempo.New(3600, 14400)
	ranges := z.Ranges(qs, qt, 6)
	for i := 0; i < 300; i++ {
		p := geom.Pt(20+rng.Float64()*50, 20+rng.Float64()*50)
		ts := 3600 + rng.Int63n(14400-3600)
		key := z.Key(p, ts)
		found := false
		for _, r := range ranges {
			if key >= r.Lo && key <= r.Hi {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("ST point (%v, %d) not covered", p, ts)
		}
	}
}

func TestMergeRanges(t *testing.T) {
	got := mergeRanges([]KeyRange{{10, 20}, {0, 5}, {21, 30}, {40, 50}, {45, 60}})
	want := []KeyRange{{0, 5}, {10, 30}, {40, 60}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range %d = %v, want %v", i, got[i], want[i])
		}
	}
}
