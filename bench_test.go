package st4ml

// Top-level benchmarks: one per table and figure of the paper's evaluation
// (§5–§6), each delegating to the experiment drivers in internal/bench at a
// laptop-friendly scale. Run them with
//
//	go test -bench=. -benchmem
//
// and regenerate the full report tables with
//
//	go run ./cmd/stbench -exp all
//
// Per-benchmark custom metrics expose the paper's headline ratios (e.g.
// prune fractions, naive/rtree speedups) alongside ns/op.

import (
	"os"
	"sync"
	"testing"

	"st4ml/internal/bench"
	"st4ml/internal/engine"
)

var (
	benchOnce sync.Once
	benchEnv  *bench.Env
	benchDir  string
	benchErr  error
)

// benchScale keeps `go test -bench=.` in the minutes range; cmd/stbench
// sweeps larger.
var benchScale = bench.Scale{
	Events: 60_000, Trajs: 6_000, POIs: 30_000, Areas: 256, AirSta: 8,
}

func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "st4ml-benchenv-*")
		if benchErr != nil {
			return
		}
		ctx := engine.New(engine.Config{})
		benchEnv, benchErr = bench.NewEnv(ctx, benchDir, benchScale)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkFig5_Selection measures load+select with the on-disk metadata
// index against the native full-scan path (Fig. 5).
func BenchmarkFig5_Selection(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	var rows []bench.Fig5Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig5(env, []float64{0.1, 0.4}, 2)
	}
	b.StopTimer()
	var nat, idx float64
	for _, r := range rows {
		nat += r.NativeMs
		idx += r.IndexedMs
	}
	if idx > 0 {
		b.ReportMetric(nat/idx, "native/indexed")
	}
}

// BenchmarkFig6_Conversion measures singular→collective conversion under
// naive, regular, and R-tree allocation (Fig. 6).
func BenchmarkFig6_Conversion(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	var rows []bench.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig6(env, []int{64}, []int{8}, []int{6})
	}
	b.StopTimer()
	var naive, rtree float64
	for _, r := range rows {
		naive += r.NaiveMs
		rtree += r.RTreeMs
	}
	if rtree > 0 {
		b.ReportMetric(naive/rtree, "naive/rtree")
	}
}

// BenchmarkTable5_LoadBalance measures partitioner CV/OV computation
// (Table 5) and reports T-STR's overlap metric.
func BenchmarkTable5_LoadBalance(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	var rows []bench.Table5Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table5(env, 64, 8, 8)
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Partitioner == "ST4ML(T-STR)" && r.Dataset == "event" {
			b.ReportMetric(r.OV, "tstr-ov")
			b.ReportMetric(r.CV, "tstr-cv")
		}
	}
}

// BenchmarkTable6_TSTRvsSTR measures T-STR against 2-d STR on selection and
// companion extraction (Table 6).
func BenchmarkTable6_TSTRvsSTR(b *testing.B) {
	env := sharedEnv(b)
	dir, err := os.MkdirTemp("", "st4ml-t6-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	b.ResetTimer()
	var res bench.Table6Result
	for i := 0; i < b.N; i++ {
		res, err = bench.Table6(env, dir, 64, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res.LoadEventTSTR > 0 {
		b.ReportMetric(res.LoadEventSTR2D/res.LoadEventTSTR, "load-speedup")
	}
	if res.CompEventTSTR > 0 {
		b.ReportMetric(res.CompEventSTR2D/res.CompEventTSTR, "companion-speedup")
	}
}

// benchmarkFig7App runs one Fig. 7 application across the systems.
func benchmarkFig7App(b *testing.B, app bench.App) {
	env := sharedEnv(b)
	b.ResetTimer()
	var rows []bench.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig7(env, []bench.App{app}, bench.AllSystems, 0.3, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var st4ml, worst float64
	for _, r := range rows {
		if r.System == bench.ST4MLB {
			st4ml = r.Ms
		}
		if r.Ms > worst {
			worst = r.Ms
		}
	}
	if st4ml > 0 {
		b.ReportMetric(worst/st4ml, "worst/st4ml")
	}
}

// BenchmarkFig7 covers the eight end-to-end applications (Fig. 7a–7h).
func BenchmarkFig7(b *testing.B) {
	for _, app := range bench.AllApps {
		app := app
		b.Run(string(app), func(b *testing.B) { benchmarkFig7App(b, app) })
	}
}

// BenchmarkTable8_LoC measures the LoC analysis itself (Table 8 is static
// source analysis; the interesting output is the ratio).
func BenchmarkTable8_LoC(b *testing.B) {
	var rows []bench.Table8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var sb, sg int
	for _, r := range rows {
		sb += r.ST4MLB
		sg += r.GeoSpark
	}
	if sb > 0 {
		b.ReportMetric(float64(sg)/float64(sb), "geospark/st4ml-loc")
	}
}

// BenchmarkFig9_CaseStudy measures the daily traffic-speed case study.
func BenchmarkFig9_CaseStudy(b *testing.B) {
	ctx := engine.New(engine.Config{})
	city := bench.NewCaseStudyCity()
	b.ResetTimer()
	var rows []bench.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig9(ctx, city, 2, 150)
	}
	b.StopTimer()
	var st4ml, gs float64
	for _, r := range rows {
		st4ml += r.ST4MLMs
		gs += r.GeoSparkMs
	}
	if st4ml > 0 {
		b.ReportMetric(gs/st4ml, "geospark/st4ml")
	}
}

// BenchmarkAblations measures the isolated design choices of DESIGN.md:
// shuffle idiom, selection indexing, compression, and R-tree build mode.
func BenchmarkAblations(b *testing.B) {
	env := sharedEnv(b)
	b.Run("reduce-vs-group", func(b *testing.B) {
		var rMs, gMs float64
		for i := 0; i < b.N; i++ {
			rMs, gMs, _, _ = bench.AblationShuffle(env.Ctx, 100_000, 64)
		}
		b.StopTimer()
		if rMs > 0 {
			b.ReportMetric(gMs/rMs, "group/reduce")
		}
	})
	b.Run("selector-index", func(b *testing.B) {
		var iMs, sMs float64
		for i := 0; i < b.N; i++ {
			iMs, sMs = bench.AblationSelectorIndex(env, 8)
		}
		b.StopTimer()
		if iMs > 0 {
			b.ReportMetric(sMs/iMs, "scan/indexed")
		}
	})
	b.Run("rtree-build", func(b *testing.B) {
		var bulk, insert float64
		for i := 0; i < b.N; i++ {
			bulk, insert = bench.AblationRTreeBuild(30_000)
		}
		b.StopTimer()
		if bulk > 0 {
			b.ReportMetric(insert/bulk, "insert/bulk")
		}
	})
}

// BenchmarkTable9_RoadFlow measures the map-matching road-flow case study.
func BenchmarkTable9_RoadFlow(b *testing.B) {
	ctx := engine.New(engine.Config{})
	city := bench.NewCaseStudyCity()
	b.ResetTimer()
	var rows []bench.Table9Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table9(ctx, city, 1, 150)
	}
	b.StopTimer()
	if len(rows) > 0 && rows[0].ProcessingMs > 0 {
		b.ReportMetric(float64(rows[0].TotalFlow), "flow-observations")
	}
}
