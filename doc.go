// Package st4ml is a Go reproduction of "ST4ML: Machine Learning Oriented
// Spatio-Temporal Data Processing at Scale" (SIGMOD 2023): a distributed
// spatio-temporal data processing system for ML feature extraction built on
// a three-stage Selection–Conversion–Extraction pipeline.
//
// The implementation lives under internal/:
//
//   - internal/engine     — the Spark-like dataflow substrate (lazy RDDs,
//     shuffles with real serialization cost, broadcast, metrics)
//   - internal/geom, internal/tempo — spatial & temporal primitives
//   - internal/index      — R-tree (STR bulk load + dynamic) and Z-curves
//   - internal/instance   — the five ST instances (§3.2.1)
//   - internal/partition  — Hash/STR/Quadtree/T-balance/T-STR/KD/Grid
//   - internal/storage    — partitioned on-disk store with ST metadata
//   - internal/selection  — the Selection stage (§3.1, §4.1)
//   - internal/convert    — instance conversions with §4.2 optimizations
//   - internal/extract    — Table 3 extractors and Table 4 RDD APIs
//   - internal/roadnet, internal/mapmatch — road graphs and HMM matching
//   - internal/core       — the public pipeline facade (§3.4)
//   - internal/baseline   — GeoSpark-like and GeoMesa-like comparators
//   - internal/bench      — the experiment harness for every paper figure
//
// See README.md for a tour, DESIGN.md for the architecture and substitution
// notes, and EXPERIMENTS.md for reproduced results.
package st4ml

// Version identifies this reproduction release.
const Version = "1.0.0"
