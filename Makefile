GO ?= go

.PHONY: build test race vet check check-nightly cover fuzz-smoke docs bench serve

# COVER_FLOOR is the minimum acceptable total statement coverage, in
# percent. The suite currently sits well above this; the floor exists to
# catch a PR that lands a subsystem without tests, not to chase decimals.
COVER_FLOOR ?= 70.0

# Per-package floors for the packages that own the byte format — the
# column codecs and the store that frames them — and for the online
# serving pair: the daemon (87.8% after the subscription wall) and the
# push hub (92.4%). Each floor sits a few points under where the suite
# landed, to catch a path landing untested without chasing decimals.
CODEC_FLOOR     ?= 80.0
STORAGE_FLOOR   ?= 80.0
SERVE_FLOOR     ?= 80.0
SUBSCRIBE_FLOOR ?= 85.0
SUMMARY_FLOOR   ?= 85.0
POINTPAT_FLOOR  ?= 80.0

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# cover runs the suite with statement coverage over all packages and fails
# if the total drops below COVER_FLOOR percent.
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{sub(/%/,"",$$NF); print $$NF}'); \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < floor+0) { printf "coverage %.1f%% is below the %.1f%% floor\n", t, floor; exit 1 } \
		printf "coverage %.1f%% >= %.1f%% floor\n", t, floor }'
	@$(GO) test -cover ./internal/codec ./internal/storage ./internal/serve ./internal/subscribe ./internal/summary ./internal/pointpat | \
	awk -v cf="$(CODEC_FLOOR)" -v sf="$(STORAGE_FLOOR)" -v vf="$(SERVE_FLOOR)" -v bf="$(SUBSCRIBE_FLOOR)" -v mf="$(SUMMARY_FLOOR)" -v pf="$(POINTPAT_FLOOR)" ' \
		{ for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) { sub(/%/, "", $$i); cov = $$i } \
		  floor = sf; \
		  if ($$2 ~ /codec$$/) floor = cf; \
		  else if ($$2 ~ /subscribe$$/) floor = bf; \
		  else if ($$2 ~ /summary$$/) floor = mf; \
		  else if ($$2 ~ /serve$$/) floor = vf; \
		  else if ($$2 ~ /pointpat$$/) floor = pf; \
		  if (cov+0 < floor+0) { printf "%s coverage %.1f%% is below its %.1f%% floor\n", $$2, cov, floor; bad = 1 } \
		  else printf "%s coverage %.1f%% >= %.1f%% floor\n", $$2, cov, floor } \
		END { exit bad }'

# docs fails if any package is missing a package comment — or carrying a
# trivial one (under 60 characters buys no godoc entry point worth
# having) — keeping the prose tour of every subsystem present (see
# ARCHITECTURE.md).
docs:
	@missing=$$($(GO) list -f '{{if lt (len .Doc) 60}}{{.ImportPath}} ({{len .Doc}} chars){{end}}' ./...); \
	if [ -n "$$missing" ]; then \
		echo "packages missing a non-trivial package comment (>= 60 chars):"; echo "$$missing"; exit 1; \
	fi; \
	echo "all packages have non-trivial package comments"

# fuzz-smoke runs each byte-format fuzzer for a short bounded burst, so
# the pre-merge gate gets real randomized coverage of the column codecs
# and the v3 block reader on top of the committed corpora (which the
# plain test run already replays as regression inputs).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzColumnCodecs$$' -fuzztime=10s ./internal/codec
	$(GO) test -run='^$$' -fuzz='^FuzzV3Block$$' -fuzztime=10s ./internal/storage
	$(GO) test -run='^$$' -fuzz='^FuzzSubscriptionIndex$$' -fuzztime=10s ./internal/subscribe
	$(GO) test -run='^$$' -fuzz='^FuzzSummarySidecar$$' -fuzztime=10s ./internal/summary

# check is the full pre-merge gate: vet, the docs gate, build, the
# race-enabled short suite (fast gate over every package — fuzz corpora,
# metamorphic suites, and the pool/prefetch paths all run with the
# detector on; `make race` remains the full-length run), the coverage
# floors (total plus per-package for the byte-format packages), a
# bounded fuzz smoke per byte-format fuzzer, and three explicit
# end-to-end smokes: boot stserved on an ephemeral port with a generated
# dataset and run one query, drive stingest's full tail-append-compact
# loop in-process, and bring up a 2-shard fleet plus router on loopback
# and check a pruned query scatters to fewer shards than the map holds.
check:
	$(GO) vet ./...
	$(MAKE) docs
	$(GO) build ./...
	$(GO) test -race -short ./...
	$(MAKE) cover
	$(MAKE) fuzz-smoke
	$(GO) test -race -count=1 -run TestServedSmoke ./cmd/stserved
	$(GO) test -race -count=1 -run TestIngestSmoke ./cmd/stingest
	$(GO) test -race -count=1 -run TestClusterSmoke ./cmd/strouter
	$(GO) test -race -count=1 -run TestApproxBytesSmoke ./internal/bench
	$(GO) test -race -count=1 -run TestPointPatSmoke ./internal/pointpat

# check-nightly is the long gate: the entire suite, full-length and
# uncached, under the race detector. It subsumes `make race` (which
# honors the test cache) and exists for a nightly cron rather than the
# pre-merge path — the subscription hub, the LSM compactor, and the
# cluster router all spin real goroutine fleets, so the full-length
# detector pass is where cross-package interleavings actually surface.
check-nightly:
	$(GO) test -race -count=1 -timeout 30m ./...

bench:
	$(GO) run ./cmd/stbench -exp all

# serve boots the feature-serving daemon on a generated demo dataset.
serve:
	$(GO) run ./cmd/stserved -demo 100000
