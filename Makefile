GO ?= go

.PHONY: build test race vet check bench serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the full pre-merge gate: vet, build, the race-enabled test suite
# (including the engine chaos tests), and an explicit stserved smoke — boot
# the daemon on an ephemeral port with a generated dataset and run one query
# end to end.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 -run TestServedSmoke ./cmd/stserved

bench:
	$(GO) run ./cmd/stbench -exp all

# serve boots the feature-serving daemon on a generated demo dataset.
serve:
	$(GO) run ./cmd/stserved -demo 100000
