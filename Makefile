GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the full pre-merge gate: vet, build, and the race-enabled test
# suite (including the engine chaos tests).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/stbench -exp all
