// Command stserved is the ST feature-serving daemon: it pins dataset
// catalogs and partition indexes in memory, executes concurrent window
// queries on one shared engine, caches hot partitions and results under a
// byte budget, and sheds overload with 429/504 instead of queueing
// unboundedly (see package serve).
//
// Usage:
//
//	stload -dataset nyc -n 500000 -out /data/nyc
//	stserved -addr :8080 -dataset nyc=/data/nyc
//	curl -s localhost:8080/query -d '{"dataset":"nyc","minx":-74.0,"miny":40.7,"maxx":-73.9,"maxy":40.8,"tstart":1357000000,"tend":1360000000}'
//
// Each -dataset flag serves one dataset as name=dir (schema = name) or
// name:schema=dir. -demo generates and serves a synthetic NYC dataset, so
// the daemon can be tried with no preparation:
//
//	stserved -demo 100000
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
)

// datasetFlags collects repeated -dataset specs.
type datasetFlags []string

func (d *datasetFlags) String() string     { return strings.Join(*d, ",") }
func (d *datasetFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var datasets datasetFlags
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		demo         = flag.Int("demo", 0, "generate and serve a synthetic NYC dataset of this many events")
		slots        = flag.Int("slots", 0, "executor slots (0 = GOMAXPROCS)")
		cacheBytes   = flag.Int64("cache-bytes", 256<<20, "partition+result cache budget (negative disables)")
		inFlight     = flag.Int("max-inflight", 0, "concurrent query bound (0 = 2x slots)")
		maxQueue     = flag.Int("max-queue", 0, "admission queue depth (0 = 4x max-inflight)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "in-flight request budget after SIGTERM before connections close hard")
		shardName    = flag.String("shard-name", "", "shard identity stamped on cluster sub-query responses and stitched trace spans")
		subQueue     = flag.Int("subscribe-queue", 0, "per-subscriber bounded update queue before drop-oldest backpressure (0 = default)")
		subPoll      = flag.Duration("subscribe-poll", 0, "manifest poll cadence for delta commits made by other processes (0 = 250ms, negative disables)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof profiling endpoints on this address (e.g. localhost:6060); empty disables")
	)
	flag.Var(&datasets, "dataset", "serve a dataset: name=dir or name:schema=dir (repeatable)")
	flag.Parse()

	srv, err := build(engine.New(engine.Config{Slots: *slots}), datasets, *demo, serve.Config{
		CacheBytes:     *cacheBytes,
		MaxInFlight:    *inFlight,
		MaxQueue:       *maxQueue,
		Timeout:        *timeout,
		ShardName:      *shardName,
		SubscribeQueue: *subQueue,
		SubscribePoll:  *subPoll,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stserved:", err)
		os.Exit(2)
	}
	for _, info := range srv.Catalog().List() {
		fmt.Printf("stserved: serving %s (%s schema): %d records in %d partitions from %s\n",
			info.Name, info.Schema, info.Records, info.Partitions, info.Dir)
	}
	if *debugAddr != "" {
		go func() {
			fmt.Printf("stserved: pprof on %s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux()); err != nil {
				fmt.Fprintln(os.Stderr, "stserved: debug server:", err)
			}
		}()
	}
	// Serve until SIGINT/SIGTERM, then drain: readiness flips to 503 first
	// (a cluster router stops routing here), in-flight queries get
	// -drain-timeout to finish, then remaining connections close.
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "stserved: "+format+"\n", args...)
	}
	fmt.Printf("stserved: listening on %s\n", *addr)
	if err := serve.Graceful(serve.GracefulConfig{
		Addr:         *addr,
		Handler:      srv.Handler(),
		Drainer:      srv,
		DrainTimeout: *drainTimeout,
		Logf:         logf,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "stserved:", err)
		os.Exit(1)
	}
}

// debugMux routes the net/http/pprof endpoints explicitly (the package's
// DefaultServeMux side-effect registration would expose them on the main
// query listener too, which the -debug-addr split exists to prevent).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// build assembles the server from the flag values. With demo > 0 it
// ingests a synthetic NYC dataset into a temp directory and serves it as
// "demo".
func build(ctx *engine.Context, datasets []string, demo int, cfg serve.Config) (*serve.Server, error) {
	cfg.Ctx = ctx
	srv := serve.NewServer(cfg)
	if demo > 0 {
		dir, err := ingestDemo(ctx, demo)
		if err != nil {
			return nil, err
		}
		if err := srv.AddDataset("demo", "nyc", dir); err != nil {
			return nil, err
		}
	}
	for _, spec := range datasets {
		name, schema, dir, err := parseDatasetSpec(spec)
		if err != nil {
			return nil, err
		}
		if err := srv.AddDataset(name, schema, dir); err != nil {
			return nil, err
		}
	}
	if len(srv.Catalog().List()) == 0 {
		return nil, fmt.Errorf("nothing to serve: pass -dataset name=dir or -demo n")
	}
	return srv, nil
}

// parseDatasetSpec splits "name=dir" or "name:schema=dir".
func parseDatasetSpec(spec string) (name, schema, dir string, err error) {
	key, dir, ok := strings.Cut(spec, "=")
	if !ok || key == "" || dir == "" {
		return "", "", "", fmt.Errorf("bad -dataset %q, want name=dir or name:schema=dir", spec)
	}
	name, schema, ok = strings.Cut(key, ":")
	if !ok {
		schema = name
	}
	return name, schema, dir, nil
}

// ingestDemo writes a synthetic NYC event dataset to a temp directory.
func ingestDemo(ctx *engine.Context, n int) (string, error) {
	dir, err := os.MkdirTemp("", "stserved-demo-*")
	if err != nil {
		return "", err
	}
	sch, _ := stdata.Lookup("nyc")
	fmt.Fprintf(os.Stderr, "stserved: ingesting %d demo events into %s ...\n", n, dir)
	_, err = sch.Ingest(ctx, datagen.NYC(n, 1), dir, sch.DefaultPlanner(8, 4),
		selection.IngestOptions{Name: "demo", SampleFrac: 0.05, Seed: 1})
	return dir, err
}
