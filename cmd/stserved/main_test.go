package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"st4ml/internal/engine"
)

// TestServedSmoke is the make-check smoke gate: build the daemon against a
// tiny generated dataset, issue one query over HTTP, and expect 200 with a
// sane body.
func TestServedSmoke(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir()) // the demo ingest dir dies with the test
	ctx := engine.New(engine.Config{Slots: 2})
	srv, err := build(ctx, nil, 2000, 8<<20, 4, 8, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(
		`{"dataset":"demo","minx":-74.1,"miny":40.6,"maxx":-73.8,"maxy":40.9,"tstart":0,"tend":2000000000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query status = %d", resp.StatusCode)
	}
	var body struct {
		Stats struct {
			SelectedRecords int64
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Stats.SelectedRecords == 0 {
		t.Error("whole-extent query selected 0 records")
	}

	for _, path := range []string{"/healthz", "/datasets", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s status = %d", path, r.StatusCode)
		}
	}
}

func TestParseDatasetSpec(t *testing.T) {
	name, schema, dir, err := parseDatasetSpec("taxi:nyc=/data/taxi")
	if err != nil || name != "taxi" || schema != "nyc" || dir != "/data/taxi" {
		t.Errorf("got %q %q %q %v", name, schema, dir, err)
	}
	name, schema, _, err = parseDatasetSpec("porto=/data/porto")
	if err != nil || name != "porto" || schema != "porto" {
		t.Errorf("got %q %q %v", name, schema, err)
	}
	for _, bad := range []string{"", "nyc", "=dir", "nyc="} {
		if _, _, _, err := parseDatasetSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}
