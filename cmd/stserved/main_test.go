package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"st4ml/internal/engine"
	"st4ml/internal/serve"
)

// TestServedSmoke is the make-check smoke gate: build the daemon against a
// tiny generated dataset, issue one query over HTTP, and expect 200 with a
// sane body.
func TestServedSmoke(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir()) // the demo ingest dir dies with the test
	ctx := engine.New(engine.Config{Slots: 2})
	srv, err := build(ctx, nil, 2000, serve.Config{CacheBytes: 8 << 20, MaxInFlight: 4, MaxQueue: 8, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(
		`{"dataset":"demo","minx":-74.1,"miny":40.6,"maxx":-73.8,"maxy":40.9,"tstart":0,"tend":2000000000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query status = %d", resp.StatusCode)
	}
	var body struct {
		Stats struct {
			SelectedRecords int64
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Stats.SelectedRecords == 0 {
		t.Error("whole-extent query selected 0 records")
	}

	for _, path := range []string{"/healthz", "/datasets", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s status = %d", path, r.StatusCode)
		}
	}
}

// TestServedExplain exercises the ?explain=1 path end to end: the response
// carries an execution report whose numbers agree with the stats block.
func TestServedExplain(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir())
	ctx := engine.New(engine.Config{Slots: 2})
	srv, err := build(ctx, nil, 2000, serve.Config{CacheBytes: 8 << 20, MaxInFlight: 4, MaxQueue: 8, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"dataset":"demo","minx":-74.1,"miny":40.6,"maxx":-73.8,"maxy":40.9,"tstart":0,"tend":2000000000,"explain":true}`
	resp, err := http.Post(ts.URL+"/query?explain=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query status = %d", resp.StatusCode)
	}
	var out struct {
		Cache   string `json:"cache"`
		Explain *struct {
			ReadPartitions  int64  `json:"read_partitions"`
			RecordsSelected int64  `json:"records_selected"`
			TasksRun        int64  `json:"tasks_run"`
			ResultCache     string `json:"result_cache"`
			Spans           int    `json:"spans"`
		} `json:"explain"`
		Stats struct {
			LoadedPartitions int64 `json:"LoadedPartitions"`
			SelectedRecords  int64 `json:"SelectedRecords"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Explain == nil {
		t.Fatal("explain=1 response has no explain block")
	}
	if out.Explain.Spans == 0 || out.Explain.TasksRun == 0 {
		t.Errorf("explain looks empty: %+v", *out.Explain)
	}
	if out.Explain.ReadPartitions != out.Stats.LoadedPartitions {
		t.Errorf("explain read %d != stats loaded %d",
			out.Explain.ReadPartitions, out.Stats.LoadedPartitions)
	}
	if out.Explain.RecordsSelected != out.Stats.SelectedRecords {
		t.Errorf("explain selected %d != stats %d",
			out.Explain.RecordsSelected, out.Stats.SelectedRecords)
	}
	if out.Explain.ResultCache != "miss" {
		t.Errorf("first query result_cache = %q, want miss", out.Explain.ResultCache)
	}

	// A repeat of the same query (same result key) must explain as a hit.
	resp2, err := http.Post(ts.URL+"/query?explain=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 struct {
		Cache   string `json:"cache"`
		Explain *struct {
			ResultCache string `json:"result_cache"`
		} `json:"explain"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Cache != "hit" || out2.Explain == nil || out2.Explain.ResultCache != "hit" {
		t.Errorf("repeat query cache=%q explain=%+v, want hit/hit", out2.Cache, out2.Explain)
	}

	// An untraced query must carry no explain block.
	resp3, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(
		`{"dataset":"demo","minx":-74.1,"miny":40.6,"maxx":-73.8,"maxy":40.9,"tstart":0,"tend":2000000000,"no_cache":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var out3 map[string]json.RawMessage
	if err := json.NewDecoder(resp3.Body).Decode(&out3); err != nil {
		t.Fatal(err)
	}
	if _, ok := out3["explain"]; ok {
		t.Error("untraced query response carries an explain block")
	}
}

// TestDebugMux checks the -debug-addr pprof mux serves the profile index
// without touching the main query mux.
func TestDebugMux(t *testing.T) {
	ts := httptest.NewServer(debugMux())
	defer ts.Close()
	r, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ status = %d", r.StatusCode)
	}
	r2, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline status = %d", r2.StatusCode)
	}
}

func TestParseDatasetSpec(t *testing.T) {
	name, schema, dir, err := parseDatasetSpec("taxi:nyc=/data/taxi")
	if err != nil || name != "taxi" || schema != "nyc" || dir != "/data/taxi" {
		t.Errorf("got %q %q %q %v", name, schema, dir, err)
	}
	name, schema, _, err = parseDatasetSpec("porto=/data/porto")
	if err != nil || name != "porto" || schema != "porto" {
		t.Errorf("got %q %q %v", name, schema, err)
	}
	for _, bad := range []string{"", "nyc", "=dir", "nyc="} {
		if _, _, _, err := parseDatasetSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}
