package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// TestIngestSmoke drives the full loop in-process: base ingest, a CSV feed
// appended via -once, then a second -once proving the offset sidecar and
// batch ids make re-runs no-ops.
func TestIngestSmoke(t *testing.T) {
	dir := t.TempDir()
	sch, _ := stdata.Lookup("nyc")
	ctx := engine.New(engine.Config{Slots: 2})
	base := datagen.NYC(500, 1)
	if _, err := sch.Ingest(ctx, base, dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	feed := filepath.Join(t.TempDir(), "feed.csv")
	extra := datagen.NYC(123, 2)
	f, err := os.Create(feed)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range extra {
		fmt.Fprintf(f, "%d,%v,%v,%d,%s\n", e.ID+10_000, e.Loc.X, e.Loc.Y, e.Time, e.Aux)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := config{
		Schema: "nyc", Dir: dir, Input: feed,
		BatchRecords: 50, Once: true, CompactDeltas: 2, GCGrace: 0,
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(500 + 123); meta.TotalCount != want {
		t.Fatalf("TotalCount = %d, want %d", meta.TotalCount, want)
	}
	// -once compacts at the end, so the batches should have been folded into
	// rewritten base partitions where the threshold was met.
	gen := meta.Generation
	if gen == 0 {
		t.Fatal("generation still 0 after appends")
	}

	// Re-running over the same file must change nothing: the offset sidecar
	// skips the consumed bytes.
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	meta2, err := storage.ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.TotalCount != meta.TotalCount {
		t.Fatalf("re-run changed TotalCount: %d -> %d", meta.TotalCount, meta2.TotalCount)
	}
}

// TestIngestSurfacesHookError pins the commit-hook failure contract: the
// batch IS committed (durable, offset advanced — a replay would dedup
// silently and lose the notification again), the error reaches the exit
// status, and a re-run neither duplicates records nor re-reports.
func TestIngestSurfacesHookError(t *testing.T) {
	dir := t.TempDir()
	sch, _ := stdata.Lookup("nyc")
	ctx := engine.New(engine.Config{Slots: 2})
	if _, err := sch.Ingest(ctx, datagen.NYC(300, 1), dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	feed := filepath.Join(t.TempDir(), "feed.csv")
	extra := datagen.NYC(40, 2)
	f, err := os.Create(feed)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range extra {
		fmt.Fprintf(f, "%d,%v,%v,%d,%s\n", e.ID+10_000, e.Loc.X, e.Loc.Y, e.Time, e.Aux)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	hookErr := errors.New("subscription notifier down")
	cancel := storage.OnCommit(dir, func(storage.CommitEvent) error { return hookErr })
	var log bytes.Buffer
	cfg := config{
		Schema: "nyc", Dir: dir, Input: feed,
		BatchRecords: 100, Once: true, CompactDeltas: 0, Log: &log,
	}
	err = run(cfg)
	cancel()
	if err == nil {
		t.Fatal("hook failure did not surface in the run error (exit status)")
	}
	var herr *storage.HookError
	if !errors.As(err, &herr) || !errors.Is(err, hookErr) {
		t.Fatalf("run error %v does not wrap the hook error", err)
	}
	if !strings.Contains(log.String(), "committed") || !strings.Contains(log.String(), "commit hook failed") {
		t.Fatalf("log line does not report the committed-but-unnotified batch: %q", log.String())
	}

	// Despite the error, the batch committed and the offset advanced.
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(300 + 40); meta.TotalCount != want {
		t.Fatalf("TotalCount = %d, want %d (batch must be durable)", meta.TotalCount, want)
	}
	off, err := readOffset(dir, feed)
	if err != nil {
		t.Fatal(err)
	}
	if off == 0 {
		t.Fatal("offset did not advance past the committed batch")
	}

	// A re-run (hook gone) is a clean no-op: no duplicates, no error.
	if err := run(cfg); err != nil {
		t.Fatalf("re-run after hook failure errored: %v", err)
	}
	meta2, err := storage.ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.TotalCount != meta.TotalCount {
		t.Fatalf("re-run duplicated records: %d -> %d", meta.TotalCount, meta2.TotalCount)
	}
}
