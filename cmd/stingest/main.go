// Command stingest turns a growing CSV file into a continuously ingesting
// dataset: it tails the file, batches complete lines, appends each batch
// to the dataset through the storage delta layer (small immutable delta
// files committed by an atomic manifest swap — no base rewrite, readers
// never blocked), and runs the background compactor that folds deltas back
// into rewritten base partitions.
//
// Usage:
//
//	stload -dataset nyc -n 500000 -out /data/nyc        # base ingest
//	stingest -dataset nyc -dir /data/nyc -input feed.csv
//	stingest -dataset nyc -dir /data/nyc -input feed.csv -once
//
// Exactly-once: every batch carries an id derived from its byte range in
// the input file, and the committed offset is persisted beside the dataset
// after each append. A crash at any point replays at most the last batch,
// which the manifest recognizes as already applied and drops. -once
// processes the file's current contents and exits (batch pipelines,
// tests); without it stingest polls for growth until interrupted.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

func main() {
	var (
		dataset   = flag.String("dataset", "nyc", "dataset schema: "+strings.Join(stdata.SchemaNames(), "|"))
		dir       = flag.String("dir", "", "dataset directory to append into (required; must hold an stload-built dataset)")
		input     = flag.String("input", "", "CSV file to tail (required)")
		batchRecs = flag.Int("batch-records", 10_000, "records per append batch")
		interval  = flag.Duration("interval", time.Second, "poll interval for file growth")
		once      = flag.Bool("once", false, "ingest the file's current contents, compact once, and exit")
		compactN  = flag.Int("compact-min-deltas", 4, "compact partitions carrying at least this many deltas (0 disables compaction)")
		compactIv = flag.Duration("compact-interval", 30*time.Second, "background compaction cadence")
		gcGrace   = flag.Duration("gc-grace", time.Minute, "age before superseded files are garbage-collected")
	)
	flag.Parse()
	if *dir == "" || *input == "" {
		fmt.Fprintln(os.Stderr, "stingest: -dir and -input are required")
		os.Exit(2)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	err := run(config{
		Schema:          *dataset,
		Dir:             *dir,
		Input:           *input,
		BatchRecords:    *batchRecs,
		Interval:        *interval,
		Once:            *once,
		CompactDeltas:   *compactN,
		CompactInterval: *compactIv,
		GCGrace:         *gcGrace,
		Stop:            stop,
		Log:             os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stingest:", err)
		os.Exit(1)
	}
}

// config carries the resolved flags; run is separated from main so the
// smoke test can drive the full loop in-process.
type config struct {
	Schema          string
	Dir             string
	Input           string
	BatchRecords    int
	Interval        time.Duration
	Once            bool
	CompactDeltas   int
	CompactInterval time.Duration
	GCGrace         time.Duration
	Stop            <-chan os.Signal
	Log             io.Writer
}

// offsetFile is the sidecar (inside the dataset directory) recording how
// far into the input the last committed batch reached. It is written after
// the manifest swap, so a crash between the two replays exactly one batch
// — which the manifest's applied-batch record then drops.
const offsetFile = "ingest.offset"

type offsetState struct {
	Input  string `json:"input"`
	Offset int64  `json:"offset"`
}

func readOffset(dir, input string) (int64, error) {
	b, err := os.ReadFile(filepath.Join(dir, offsetFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var st offsetState
	if err := json.Unmarshal(b, &st); err != nil {
		return 0, fmt.Errorf("parse %s: %w", offsetFile, err)
	}
	if st.Input != input {
		return 0, nil // different stream: start over, batch ids differ too
	}
	return st.Offset, nil
}

func writeOffset(dir, input string, off int64) error {
	b, err := json.Marshal(offsetState{Input: input, Offset: off})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, offsetFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, offsetFile))
}

func run(cfg config) error {
	sch, ok := stdata.Lookup(cfg.Schema)
	if !ok {
		return fmt.Errorf("unknown dataset schema %q", cfg.Schema)
	}
	if _, err := storage.ReadMetadata(cfg.Dir); err != nil {
		return fmt.Errorf("dataset at %s: %w", cfg.Dir, err)
	}
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = 10_000
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}

	var stopCompact func()
	if cfg.CompactDeltas > 0 && !cfg.Once {
		stopCompact = startCompactor(sch, cfg)
		defer stopCompact()
	}

	off, err := readOffset(cfg.Dir, cfg.Input)
	if err != nil {
		return err
	}
	for {
		n, err := ingestAvailable(sch, cfg, &off)
		if err != nil {
			return err
		}
		if cfg.Once {
			break
		}
		if n > 0 {
			continue // drained a batch; look for more immediately
		}
		select {
		case <-cfg.Stop:
			return nil
		case <-time.After(cfg.Interval):
		}
	}
	if cfg.CompactDeltas > 0 {
		st, err := sch.Compact(cfg.Dir, storage.CompactOptions{
			MinDeltas: cfg.CompactDeltas, GCGrace: cfg.GCGrace,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Log, "stingest: compacted %d partitions (%d deltas, %d records)\n",
			st.PartitionsCompacted, st.DeltasMerged, st.RecordsRewritten)
	}
	return nil
}

// ingestAvailable appends everything currently readable past *off in
// batches, advancing the offset as batches commit. It returns how many
// records it appended.
func ingestAvailable(sch stdata.Schema, cfg config, off *int64) (int, error) {
	f, err := os.Open(cfg.Input)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(*off, io.SeekStart); err != nil {
		return 0, err
	}
	total := 0
	r := bufio.NewReader(f)
	var batch bytes.Buffer
	lines := 0
	batchStart := *off
	next := *off
	flush := func() error {
		if lines == 0 {
			return nil
		}
		recs, err := sch.ReadCSV(bytes.NewReader(batch.Bytes()))
		if err != nil {
			return fmt.Errorf("parse batch at offset %d: %w", batchStart, err)
		}
		// The byte range identifies the batch across restarts: a replay of
		// an already-committed range is recognized by the manifest and
		// dropped (exactly-once).
		id := fmt.Sprintf("%s:%d-%d", filepath.Base(cfg.Input), batchStart, next)
		gen, err := sch.Append(recs, cfg.Dir, id)
		if err != nil {
			var herr *storage.HookError
			if !errors.As(err, &herr) {
				return err
			}
			// A commit-hook failure comes back WITH committed state: the batch
			// is durable, only the post-commit notification (subscription push)
			// failed. Advance the offset before surfacing the error — replaying
			// the batch would dedup to a silent no-op and lose the notification
			// again — then exit non-zero so the operator sees it.
			if werr := writeOffset(cfg.Dir, cfg.Input, next); werr != nil {
				return fmt.Errorf("batch %s committed but commit hook failed (%v); recording offset also failed: %w", id, err, werr)
			}
			fmt.Fprintf(cfg.Log, "stingest: batch %s committed (generation %d) but commit hook failed: %v\n", id, gen, err)
			return fmt.Errorf("batch %s committed but commit hook failed: %w", id, err)
		}
		if err := writeOffset(cfg.Dir, cfg.Input, next); err != nil {
			return err
		}
		fmt.Fprintf(cfg.Log, "stingest: appended %d records (bytes %d-%d, generation %d)\n",
			lines, batchStart, next, gen)
		total += lines
		*off = next
		batchStart = next
		batch.Reset()
		lines = 0
		return nil
	}
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			// An unterminated tail line is a partial write; leave it for the
			// next poll.
			break
		}
		if err != nil {
			return total, err
		}
		next += int64(len(line))
		batch.WriteString(line)
		lines++
		if lines >= cfg.BatchRecords {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	return total, flush()
}

// startCompactor launches the periodic compaction loop and returns its
// stop function.
func startCompactor(sch stdata.Schema, cfg config) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(cfg.CompactInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				st, err := sch.Compact(cfg.Dir, storage.CompactOptions{
					MinDeltas: cfg.CompactDeltas, GCGrace: cfg.GCGrace,
				})
				if err != nil {
					fmt.Fprintf(cfg.Log, "stingest: compaction: %v\n", err)
				} else if st.PartitionsCompacted > 0 {
					fmt.Fprintf(cfg.Log, "stingest: compacted %d partitions (%d deltas, %d records)\n",
						st.PartitionsCompacted, st.DeltasMerged, st.RecordsRewritten)
				}
			}
		}
	}()
	return func() { close(stop); <-done }
}
