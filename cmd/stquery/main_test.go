package main

import (
	"testing"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

func ingestNYC(t *testing.T, ctx *engine.Context, n int) string {
	t.Helper()
	dir := t.TempDir()
	recs := datagen.NYC(n, 1)
	r := engine.Parallelize(ctx, recs, 0)
	if _, err := selection.Ingest(r, dir, stdata.EventRecC, stdata.EventRec.Box,
		partition.TSTR{GT: 4, GS: 4},
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestQueryAllSchemas(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 2000)
	w := selection.Window{
		Space: geom.Box(-74.0, 40.7, -73.9, 40.8),
		Time:  tempo.New(datagen.Year2013.Start, datagen.Year2013.End),
	}
	pruned, err := query(ctx, "nyc", dir, w, false)
	if err != nil {
		t.Fatal(err)
	}
	full, err := query(ctx, "nyc", dir, w, true)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.SelectedRecords != full.SelectedRecords {
		t.Errorf("pruned selected %d, full %d", pruned.SelectedRecords, full.SelectedRecords)
	}
	if full.LoadedPartitions != full.TotalPartitions {
		t.Errorf("full scan should load everything: %+v", full)
	}
	if _, err := query(ctx, "unknown", dir, w, false); err == nil {
		t.Error("unknown schema should error")
	}
}
