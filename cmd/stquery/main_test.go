package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"st4ml/internal/cluster"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

func ingestNYC(t *testing.T, ctx *engine.Context, n int) string {
	t.Helper()
	dir := t.TempDir()
	recs := datagen.NYC(n, 1)
	r := engine.Parallelize(ctx, recs, 0)
	if _, err := selection.Ingest(r, dir, stdata.EventRecC, stdata.EventRec.Box,
		partition.TSTR{GT: 4, GS: 4},
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestQueryAllSchemas(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 2000)
	w := selection.Window{
		Space: geom.Box(-74.0, 40.7, -73.9, 40.8),
		Time:  tempo.New(datagen.Year2013.Start, datagen.Year2013.End),
	}
	pruned, err := query(ctx, "nyc", dir, w, false)
	if err != nil {
		t.Fatal(err)
	}
	full, err := query(ctx, "nyc", dir, w, true)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.SelectedRecords != full.SelectedRecords {
		t.Errorf("pruned selected %d, full %d", pruned.SelectedRecords, full.SelectedRecords)
	}
	if full.LoadedPartitions != full.TotalPartitions {
		t.Errorf("full scan should load everything: %+v", full)
	}
	if _, err := query(ctx, "unknown", dir, w, false); err == nil {
		t.Error("unknown schema should error")
	}
}

// TestQueryServesCommittedV1Golden points stquery's query path at the
// committed legacy-format dataset under internal/storage/testdata — the
// end-to-end half of the backward-compat guarantee: a v1 store ingested
// before the block format existed still answers queries without re-ingest.
func TestQueryServesCommittedV1Golden(t *testing.T) {
	dir := "../../internal/storage/testdata/v1-golden"
	ctx := engine.New(engine.Config{Slots: 2})
	w := selection.Window{
		Space: geom.Box(-180, -90, 180, 90),
		Time:  tempo.New(0, 1<<60),
	}
	stats, err := query(ctx, "nyc", dir, w, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SelectedRecords != 80 {
		t.Errorf("golden v1 dataset served %d records, want 80", stats.SelectedRecords)
	}
	// v1 files have no block structure: every loaded partition reads as one
	// scanned block, nothing prunes.
	if stats.BlocksTotal != int64(stats.LoadedPartitions) || stats.BlocksPruned != 0 {
		t.Errorf("v1 block accounting off: %+v", stats)
	}
}

// TestExplainMatchesMetrics is the acceptance check that the explain report
// (built purely from the span dump) agrees with the engine's own counters
// and with the selection stats — the two observability paths cannot drift.
func TestExplainMatchesMetrics(t *testing.T) {
	dir := ingestNYC(t, engine.New(engine.Config{Slots: 2}), 2000)

	tr := trace.New()
	ctx := engine.New(engine.Config{Slots: 2, Tracer: tr})
	w := selection.Window{
		Space: geom.Box(-74.0, 40.7, -73.9, 40.8),
		Time:  tempo.New(datagen.Year2013.Start, datagen.Year2013.End),
	}
	stats, err := query(ctx, "nyc", dir, w, false)
	if err != nil {
		t.Fatal(err)
	}

	e := trace.Build(tr.Snapshot())
	snap := ctx.Metrics.Snapshot()

	if e.TasksRun != snap.TasksRun {
		t.Errorf("explain tasks %d != metrics tasks %d", e.TasksRun, snap.TasksRun)
	}
	if e.TaskRetries != snap.TaskRetries {
		t.Errorf("explain retries %d != metrics retries %d", e.TaskRetries, snap.TaskRetries)
	}
	if e.ShuffleBytes != snap.ShuffleBytes {
		t.Errorf("explain shuffle bytes %d != metrics %d", e.ShuffleBytes, snap.ShuffleBytes)
	}
	if e.ShuffleRecords != snap.ShuffleRecords {
		t.Errorf("explain shuffle records %d != metrics %d", e.ShuffleRecords, snap.ShuffleRecords)
	}

	// Selection stats agree with the span-derived partition accounting.
	if e.ReadPartitions != int64(stats.LoadedPartitions) ||
		e.TotalPartitions != int64(stats.TotalPartitions) {
		t.Errorf("explain partitions %d/%d != stats %d/%d",
			e.ReadPartitions, e.TotalPartitions, stats.LoadedPartitions, stats.TotalPartitions)
	}
	if e.RecordsSelected != stats.SelectedRecords {
		t.Errorf("explain selected %d != stats %d", e.RecordsSelected, stats.SelectedRecords)
	}
	if e.PartitionBytes != stats.LoadedBytes {
		t.Errorf("explain bytes %d != stats %d", e.PartitionBytes, stats.LoadedBytes)
	}

	// Block-granularity accounting agrees three ways: selection stats, the
	// engine counters, and the span-derived explain.
	if e.BlocksScanned != stats.BlocksScanned || e.BlocksPruned != stats.BlocksPruned ||
		e.BytesDecompressed != stats.DecompressedBytes {
		t.Errorf("explain blocks %d/%d/%d != stats %d/%d/%d",
			e.BlocksScanned, e.BlocksPruned, e.BytesDecompressed,
			stats.BlocksScanned, stats.BlocksPruned, stats.DecompressedBytes)
	}
	if e.BlocksScanned != snap.BlocksScanned || e.BlocksPruned != snap.BlocksPruned ||
		e.BytesDecompressed != snap.BytesDecompressed {
		t.Errorf("explain blocks %d/%d/%d != metrics %d/%d/%d",
			e.BlocksScanned, e.BlocksPruned, e.BytesDecompressed,
			snap.BlocksScanned, snap.BlocksPruned, snap.BytesDecompressed)
	}
	if stats.BlocksTotal == 0 || stats.BlocksScanned+stats.BlocksPruned != stats.BlocksTotal {
		t.Errorf("block totals inconsistent: %+v", stats)
	}

	// Every executed stage appears in the explain with matching task and
	// record counts.
	if len(e.Stages) != len(snap.Stages) {
		t.Fatalf("explain has %d stages, metrics %d", len(e.Stages), len(snap.Stages))
	}
	for _, ms := range snap.Stages {
		es, ok := e.StageByName(ms.Name)
		if !ok {
			t.Errorf("stage %q missing from explain", ms.Name)
			continue
		}
		if es.Tasks != int64(ms.Tasks) || es.Records != ms.Records {
			t.Errorf("stage %q: explain tasks/records %d/%d != metrics %d/%d",
				ms.Name, es.Tasks, es.Records, ms.Tasks, ms.Records)
		}
	}
}

// TestQueryServerMode drives -server end to end against an in-process
// 2-shard cluster: the printed report must carry the server stats and, with
// explain, the stitched scatter lines a routed query produces.
func TestQueryServerMode(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := stdata.Lookup("nyc")
	dir := t.TempDir()
	if _, err := sch.Ingest(ctx, datagen.NYC(2000, 5), dir, sch.DefaultPlanner(4, 2),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	var urls []string
	for i := 0; i < 2; i++ {
		srv := serve.NewServer(serve.Config{Ctx: ctx, ShardName: fmt.Sprintf("s%d", i)})
		if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	m, err := cluster.ParseShards(urls[0] + ";" + urls[1])
	if err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewRouter(cluster.Config{Shards: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(r.Handler())
	defer router.Close()

	req := serve.QueryRequest{Dataset: "nyc",
		MinX: -180, MinY: -90, MaxX: 180, MaxY: 90,
		TStart: 0, TEnd: 1 << 60, Explain: true}
	var buf bytes.Buffer
	if err := queryServer(&buf, router.URL, req); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"partitions:", "records:", "scatter:", "shard s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("server-mode report missing %q:\n%s", want, out)
		}
	}

	// Errors surface as errors, not zero-value reports.
	if err := queryServer(io.Discard, router.URL, serve.QueryRequest{Dataset: "nope"}); err == nil {
		t.Fatal("unknown dataset did not error")
	}
}

// TestSubscribeServerMode drives -subscribe end to end: the client
// registers the window over HTTP, prints the init line, then one line per
// pushed batch as commits land, and exits once -events updates arrived.
func TestSubscribeServerMode(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := stdata.Lookup("nyc")
	dir := t.TempDir()
	if _, err := sch.Ingest(ctx, datagen.NYC(1000, 5), dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.Config{Ctx: ctx, SubscribePoll: -1})
	defer srv.Close()
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := serve.QueryRequest{Dataset: "nyc",
		MinX: -180, MinY: -90, MaxX: 180, MaxY: 90,
		TStart: 0, TEnd: 1 << 60}

	// Commit from a second goroutine once the subscription is up; the
	// client's stream sees init plus the commit's batches.
	go func() {
		// The hub admits the subscriber before the init is delivered, so a
		// short settle keeps the commit after admission without coupling to
		// client internals. Commits before admission land in the init anyway.
		time.Sleep(100 * time.Millisecond)
		if _, err := sch.Append(datagen.NYC(100, 9), dir, "cli-sub-1"); err != nil {
			t.Error(err)
		}
	}()
	var buf bytes.Buffer
	if err := subscribeServer(&buf, ts.URL, req, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "subscribed: ") || !strings.Contains(out, "init: generation") {
		t.Fatalf("subscribe output missing init line:\n%s", out)
	}
	if !strings.Contains(out, "batch: generation") {
		t.Fatalf("subscribe output missing batch line:\n%s", out)
	}

	// A draining daemon refuses the subscription with an error.
	srv.SetDraining(true)
	if err := subscribeServer(io.Discard, ts.URL, req, 1); err == nil {
		t.Fatal("draining daemon accepted a subscription")
	}
}
