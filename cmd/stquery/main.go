// Command stquery runs an ad-hoc ST range selection against a dataset
// ingested with stload, reporting how much the metadata index pruned and
// how many records matched.
//
// Usage:
//
//	stquery -dir /data/nyc -dataset nyc \
//	    -minx -74.0 -miny 40.7 -maxx -73.9 -maxy 40.8 \
//	    -tstart 1357000000 -tend 1360000000
//
// With -server it queries a running stserved daemon or strouter cluster
// router over HTTP instead of reading the dataset directly — the same
// window flags and the same -explain report, which against a router renders
// the stitched router→shard→partition:read tree:
//
//	stquery -server http://localhost:8080 -dataset nyc -explain ...
//
// With -subscribe (requires -server) the window becomes a standing
// subscription: the daemon streams an init snapshot followed by
// incremental batch/resync events over SSE as delta commits land, until
// -events updates have arrived (0 streams until interrupted):
//
//	stquery -server http://localhost:8080 -dataset nyc -subscribe -events 10 ...
//
// With -pointpat the selected window feeds a distributed point-pattern
// statistic instead of a plain count: k estimates the edge-corrected
// space-time Ripley's K function over a -radii × -lags grid (with
// partition halo exchange for exact boundary pairs), getis computes
// Getis-Ord Gi* hot-spot z-scores over a -cells × -tslots raster.
// -pointpat-brute additionally runs the single-partition brute-force
// oracle and fails on any bit divergence:
//
//	stquery -dir /data/nyc -dataset nyc -pointpat k -radii 0.005,0.01 -lags 1800,3600 ...
//	stquery -dir /data/nyc -dataset nyc -pointpat getis -cells 16 -tslots 8 -zthresh 2.5 ...
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/pointpat"
	"st4ml/internal/selection"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/subscribe"
	"st4ml/internal/summary"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

func main() {
	var (
		dir       = flag.String("dir", "", "dataset directory (required unless -server)")
		server    = flag.String("server", "", "query a running stserved/strouter at this base URL instead of reading -dir")
		dataset   = flag.String("dataset", "nyc", "schema: "+strings.Join(stdata.SchemaNames(), "|"))
		minx      = flag.Float64("minx", -180, "window min longitude")
		miny      = flag.Float64("miny", -90, "window min latitude")
		maxx      = flag.Float64("maxx", 180, "window max longitude")
		maxy      = flag.Float64("maxy", 90, "window max latitude")
		tstart    = flag.Int64("tstart", 0, "window start (unix seconds)")
		tend      = flag.Int64("tend", 1<<60, "window end (unix seconds)")
		full      = flag.Bool("full-scan", false, "skip metadata pruning (native path)")
		metrics   = flag.Bool("metrics", false, "print the engine counter snapshot after the query")
		explain   = flag.Bool("explain", false, "print the aggregated execution report (partitions pruned, records, tasks, per-stage breakdown)")
		traceFile = flag.String("trace", "", "write a Chrome trace-event dump of the query to this file (open in chrome://tracing or Perfetto)")
		subscr    = flag.Bool("subscribe", false, "register the window as a standing subscription on -server and stream pushed updates (SSE)")
		events    = flag.Int("events", 0, "with -subscribe: exit after this many updates (0 = stream until interrupted)")
		approx    = flag.Bool("approx", false, "answer an aggregate from compaction-time summaries: estimate ± bound, guaranteed to contain the exact answer")
		agg       = flag.String("agg", "count", "with -approx: aggregate (count|hist|quantile)")
		quantile  = flag.Float64("q", 0.5, "with -approx -agg quantile: quantile in [0,1]")
		res       = flag.Int("res", 0, "with -approx -agg hist: histogram cells per axis (0 = default)")
		approxScn = flag.Bool("approx-scan", false, "with -approx: scan boundary-straddling blocks exactly for a tighter bound")
		pointpatS = flag.String("pointpat", "", "point-pattern statistic over the selected window: k (space-time Ripley's K) or getis (Getis-Ord Gi* hot spots)")
		radii     = flag.String("radii", "0.005,0.01,0.02", "with -pointpat k: ascending spatial radii, coordinate units (comma-separated)")
		lags      = flag.String("lags", "1800,3600,7200", "with -pointpat k: ascending temporal lags, seconds (comma-separated)")
		ppParts   = flag.Int("pointpat-parts", 0, "with -pointpat: ST partition / parallelism count (0 = engine default)")
		ppBrute   = flag.Bool("pointpat-brute", false, "with -pointpat: also run the single-partition brute-force oracle and verify bit-for-bit agreement")
		cells     = flag.Int("cells", 8, "with -pointpat getis: raster cells per spatial axis")
		tslots    = flag.Int("tslots", 6, "with -pointpat getis: raster time slots")
		nbrCells  = flag.Int("nbr-cells", 1, "with -pointpat getis: spatial neighborhood radius, cells")
		nbrSlots  = flag.Int("nbr-slots", 1, "with -pointpat getis: temporal neighborhood radius, slots")
		zThresh   = flag.Float64("zthresh", 1.96, "with -pointpat getis: hot-spot z-score threshold")
	)
	flag.Parse()
	if *subscr && *server == "" {
		fmt.Fprintln(os.Stderr, "stquery: -subscribe requires -server")
		os.Exit(2)
	}
	if *pointpatS != "" && *server != "" {
		fmt.Fprintln(os.Stderr, "stquery: -pointpat runs against -dir, not -server")
		os.Exit(2)
	}
	if *server != "" {
		req := serve.QueryRequest{
			Dataset: *dataset,
			MinX:    *minx, MinY: *miny, MaxX: *maxx, MaxY: *maxy,
			TStart: *tstart, TEnd: *tend,
			Explain: *explain,
			Approx:  *approx, Agg: *agg, Q: *quantile, Res: *res, ApproxScan: *approxScn,
		}
		if !*approx {
			req.Agg, req.Q, req.Res, req.ApproxScan = "", 0, 0, false
		}
		var err error
		if *subscr {
			err = subscribeServer(os.Stdout, *server, req, *events)
		} else {
			err = queryServer(os.Stdout, *server, req)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stquery:", err)
			os.Exit(1)
		}
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "stquery: -dir is required (or -server)")
		os.Exit(2)
	}
	var tr *trace.Tracer
	if *explain || *traceFile != "" {
		tr = trace.New()
	}
	ctx := engine.New(engine.Config{Tracer: tr})
	w := selection.Window{
		Space: geom.Box(*minx, *miny, *maxx, *maxy),
		Time:  tempo.New(*tstart, *tend),
	}
	if *pointpatS != "" {
		err := runPointPat(os.Stdout, ctx, *dataset, *dir, w, pointPatOptions{
			Stat: *pointpatS, Radii: *radii, Lags: *lags,
			Partitions: *ppParts, Brute: *ppBrute,
			Cells: *cells, TSlots: *tslots,
			NbrCells: *nbrCells, NbrSlots: *nbrSlots, ZThresh: *zThresh,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stquery:", err)
			os.Exit(1)
		}
		if *metrics {
			fmt.Println(ctx.Metrics.Snapshot())
		}
		if *explain {
			trace.Build(tr.Snapshot()).Fprint(os.Stdout)
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile, tr); err != nil {
				fmt.Fprintln(os.Stderr, "stquery:", err)
				os.Exit(1)
			}
		}
		return
	}
	if *approx {
		env, err := queryApprox(ctx, *dataset, *dir, w, stdata.ApproxRequest{
			Agg: *agg, Q: *quantile, Res: *res, ScanBoundary: *approxScn,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stquery:", err)
			os.Exit(1)
		}
		printApprox(os.Stdout, env)
		if *metrics {
			fmt.Println(ctx.Metrics.Snapshot())
		}
		if *explain {
			trace.Build(tr.Snapshot()).Fprint(os.Stdout)
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile, tr); err != nil {
				fmt.Fprintln(os.Stderr, "stquery:", err)
				os.Exit(1)
			}
		}
		return
	}
	stats, err := query(ctx, *dataset, *dir, w, *full)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stquery:", err)
		os.Exit(1)
	}
	fmt.Printf("partitions: %d/%d loaded\nrecords: %d loaded, %d selected\nbytes read: %d\n",
		stats.LoadedPartitions, stats.TotalPartitions,
		stats.LoadedRecords, stats.SelectedRecords, stats.LoadedBytes)
	fmt.Printf("blocks: %d/%d scanned (%d pruned); %d bytes decompressed\n",
		stats.BlocksScanned, stats.BlocksTotal, stats.BlocksPruned, stats.DecompressedBytes)
	if stats.RecordsPruned > 0 {
		fmt.Printf("records pruned columnar: %d (v3 predicate, skipped before materialization)\n",
			stats.RecordsPruned)
	}
	if *metrics {
		// Same counters the server's /metrics and stbench report, so every
		// entry point speaks one metrics dialect.
		fmt.Println(ctx.Metrics.Snapshot())
	}
	if *explain {
		trace.Build(tr.Snapshot()).Fprint(os.Stdout)
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile, tr); err != nil {
			fmt.Fprintln(os.Stderr, "stquery:", err)
			os.Exit(1)
		}
	}
}

// queryServer runs the window against a serving daemon (or cluster router)
// over HTTP and prints the stats in the local format, followed by the
// server-side execution report when -explain was given.
func queryServer(w io.Writer, base string, req serve.QueryRequest) error {
	b, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hresp, err := http.Post(strings.TrimRight(base, "/")+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("server answered %d: %s", hresp.StatusCode, e.Error)
		}
		return fmt.Errorf("server answered %d: %s", hresp.StatusCode, bytes.TrimSpace(body))
	}
	var resp serve.QueryResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return err
	}
	fmt.Fprintf(w, "server: %s (cache %s, %.3f ms)\n", base, resp.Cache, resp.ElapsedMS)
	if resp.Approx != nil {
		printApprox(w, resp.Approx)
	} else {
		stats := resp.Stats
		fmt.Fprintf(w, "partitions: %d/%d loaded\nrecords: %d loaded, %d selected\nbytes read: %d\n",
			stats.LoadedPartitions, stats.TotalPartitions,
			stats.LoadedRecords, stats.SelectedRecords, stats.LoadedBytes)
	}
	resp.Explain.Fprint(w)
	return nil
}

// queryApprox answers the window from the dataset's summary sidecars
// directly (the -dir path; -server routes through the daemon instead).
func queryApprox(ctx *engine.Context, dataset, dir string, w selection.Window, req stdata.ApproxRequest) (*summary.Result, error) {
	sch, ok := stdata.Lookup(dataset)
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		return nil, err
	}
	res, _, err := sch.ApproxQuery(ctx, dir, meta, w, req)
	return res, err
}

// printApprox renders an approximate answer envelope.
func printApprox(w io.Writer, r *summary.Result) {
	fmt.Fprintf(w, "approx %s: %g ± %g", r.Agg, r.Estimate, r.Bound)
	if r.Exact {
		fmt.Fprintf(w, " (exact)")
	}
	fmt.Fprintf(w, "\ncount envelope: [%d,%d]", r.CountLo, r.CountHi)
	if r.Distinct > 0 {
		fmt.Fprintf(w, "; distinct ids ~%.0f", r.Distinct)
		if r.DistinctExact {
			fmt.Fprintf(w, " (exact)")
		}
	}
	fmt.Fprintf(w, "\nprovenance: %d summary blocks, %d blocks scanned, %d records scanned, %d bytes read",
		r.SummaryBlocks, r.ScannedBlocks, r.ScannedRecords, r.BytesRead)
	if r.Fallback {
		fmt.Fprintf(w, "; exact fallback (no sidecars)")
	}
	fmt.Fprintf(w, "\n")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "  cell [%g,%g]x[%g,%g] t[%g,%g]: %g ± %g [%d,%d]\n",
			c.Box.Min[0], c.Box.Max[0], c.Box.Min[1], c.Box.Max[1], c.Box.Min[2], c.Box.Max[2],
			c.Estimate, c.Bound, c.Lo, c.Hi)
	}
}

// subscribeServer registers the window as a standing subscription on the
// daemon and prints one line per pushed update until maxEvents arrive
// (0 = no bound). It speaks the server's SSE framing: `event:` carries the
// update kind, `data:` the JSON payload.
func subscribeServer(w io.Writer, base string, req serve.QueryRequest, maxEvents int) error {
	b, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hresp, err := http.Post(strings.TrimRight(base, "/")+"/subscribe", "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		return fmt.Errorf("server answered %d: %s", hresp.StatusCode, bytes.TrimSpace(body))
	}
	fmt.Fprintf(w, "subscribed: %s dataset %s window [%g,%g]x[%g,%g] t[%d,%d]\n",
		base, req.Dataset, req.MinX, req.MaxX, req.MinY, req.MaxY, req.TStart, req.TEnd)
	seen := 0
	sc := bufio.NewScanner(hresp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0: // blank line dispatches the accumulated frame
			if data == nil {
				continue // keepalive comment frame
			}
			if err := printUpdate(w, data); err != nil {
				return err
			}
			data = nil
			seen++
			if maxEvents > 0 && seen >= maxEvents {
				return nil
			}
		case bytes.HasPrefix(line, []byte("data: ")):
			data = append([]byte(nil), line[len("data: "):]...)
		default:
			// event:/id: lines duplicate fields inside data; comments keep
			// the stream alive. Nothing to do for either.
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("stream ended after %d events (daemon drained?)", seen)
}

// printUpdate renders one pushed update as a log line.
func printUpdate(w io.Writer, data []byte) error {
	var u subscribe.Update
	if err := json.Unmarshal(data, &u); err != nil {
		return fmt.Errorf("bad update frame: %w", err)
	}
	switch u.Kind {
	case subscribe.KindBatch:
		_, err := fmt.Fprintf(w, "batch: generation %d seq %d partition %d: %d records\n",
			u.Generation, u.Seq, u.Partition, len(u.Records))
		return err
	default: // init, resync
		records, parts := 0, 0
		for _, p := range u.Parts {
			parts++
			records += len(p.Records)
		}
		_, err := fmt.Fprintf(w, "%s: generation %d (fence %d): %d records in %d partitions\n",
			u.Kind, u.Generation, u.NextSeq, records, parts)
		return err
	}
}

// writeTrace dumps the tracer's spans as a Chrome trace file.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pointPatOptions bundles the -pointpat flag values.
type pointPatOptions struct {
	Stat               string
	Radii, Lags        string
	Partitions         int
	Brute              bool
	Cells, TSlots      int
	NbrCells, NbrSlots int
	ZThresh            float64
}

// runPointPat selects the window, projects matches to pattern points, and
// runs the requested distributed point-pattern statistic.
func runPointPat(w io.Writer, ctx *engine.Context, dataset, dir string, win selection.Window, o pointPatOptions) error {
	sch, ok := stdata.Lookup(dataset)
	if !ok {
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	pts, stats, err := sch.SelectPoints(ctx, dir, win)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "selected %d points (%d/%d partitions loaded)\n",
		len(pts), stats.LoadedPartitions, stats.TotalPartitions)
	switch o.Stat {
	case "k":
		return runRipleyK(w, ctx, pts, o)
	case "getis":
		return runGetis(w, ctx, pts, o)
	default:
		return fmt.Errorf("unknown -pointpat statistic %q (want k or getis)", o.Stat)
	}
}

func runRipleyK(w io.Writer, ctx *engine.Context, pts []pointpat.Point, o pointPatOptions) error {
	radii, err := parseFloats(o.Radii)
	if err != nil {
		return fmt.Errorf("-radii: %w", err)
	}
	lags, err := parseInts(o.Lags)
	if err != nil {
		return fmt.Errorf("-lags: %w", err)
	}
	cfg := pointpat.KConfig{
		Grid:       pointpat.Grid{Radii: radii, Lags: lags},
		Partitions: o.Partitions,
	}
	res, err := pointpat.DistributedK(ctx, pts, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ripley k: n=%d region %s t[%d,%d] over %d partitions\n",
		res.N, res.Region.Space, res.Region.Time.Start, res.Region.Time.End, res.Partitions)
	fmt.Fprintf(w, "%10s %8s %12s %12s %14s\n", "radius", "lag", "pairs", "centers", "K")
	for r, h := range radii {
		for l, lag := range lags {
			fmt.Fprintf(w, "%10g %8d %12d %12d %14.6g\n",
				h, lag, res.Pairs[r][l], res.Centers[r][l], res.K[r][l])
		}
	}
	fmt.Fprintf(w, "halo: %d points, %d bytes; pairs: %d tested, %d counted\n",
		res.HaloPoints, res.HaloBytes, res.PairsTested, res.PairsCounted)
	if o.Brute {
		brute, err := pointpat.BruteForceK(pts, cfg)
		if err != nil {
			return err
		}
		if err := sameK(res, brute); err != nil {
			return fmt.Errorf("oracle divergence: %w", err)
		}
		fmt.Fprintf(w, "oracle: brute force identical (%d pairs tested there)\n", brute.PairsTested)
	}
	return nil
}

func runGetis(w io.Writer, ctx *engine.Context, pts []pointpat.Point, o pointPatOptions) error {
	if len(pts) == 0 {
		fmt.Fprintln(w, "getis: no points in window")
		return nil
	}
	reg := pointpat.RegionOf(pts)
	cfg := pointpat.GetisConfig{
		Grid: instance.RasterGrid{
			Space: instance.SpatialGrid{Extent: reg.Space, NX: o.Cells, NY: o.Cells},
			Time:  instance.TimeGrid{Window: reg.Time, NT: o.TSlots},
		},
		RadiusCells: o.NbrCells, LagSlots: o.NbrSlots,
		Partitions: o.Partitions,
	}
	res, err := pointpat.DistributedGiStar(ctx, pts, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "getis-ord gi*: %d cells (%dx%dx%d), mean %.4g, std %.4g\n",
		len(res.Counts), o.Cells, o.Cells, o.TSlots, res.Mean, res.Std)
	hot := res.Hot(o.ZThresh)
	fmt.Fprintf(w, "hot spots (z >= %g): %d\n", o.ZThresh, len(hot))
	sort.Slice(hot, func(i, j int) bool { return hot[i].Z > hot[j].Z })
	for i, c := range hot {
		if i == 20 {
			fmt.Fprintf(w, "  ... %d more\n", len(hot)-20)
			break
		}
		ext, slot := cfg.Grid.CellAt(c.Cell)
		fmt.Fprintf(w, "  cell (%d,%d,%d) %s t[%d,%d]: count %d, z %.3f\n",
			c.IX, c.IY, c.IT, ext, slot.Start, slot.End, c.Count, c.Z)
	}
	if o.Brute {
		brute, err := pointpat.BruteForceGiStar(pts, cfg)
		if err != nil {
			return err
		}
		for i := range res.Z {
			if math.Float64bits(res.Z[i]) != math.Float64bits(brute.Z[i]) ||
				res.Counts[i] != brute.Counts[i] {
				return fmt.Errorf("oracle divergence at cell %d: distributed (%d, %v), brute (%d, %v)",
					i, res.Counts[i], res.Z[i], brute.Counts[i], brute.Z[i])
			}
		}
		fmt.Fprintln(w, "oracle: brute force identical")
	}
	return nil
}

// sameK verifies two K results agree bit-for-bit.
func sameK(a, b *pointpat.KResult) error {
	if a.N != b.N {
		return fmt.Errorf("n %d vs %d", a.N, b.N)
	}
	for r := range a.K {
		for l := range a.K[r] {
			if a.Pairs[r][l] != b.Pairs[r][l] || a.Centers[r][l] != b.Centers[r][l] ||
				math.Float64bits(a.K[r][l]) != math.Float64bits(b.K[r][l]) {
				return fmt.Errorf("cell (%d,%d): pairs %d/%d centers %d/%d K %v/%v",
					r, l, a.Pairs[r][l], b.Pairs[r][l],
					a.Centers[r][l], b.Centers[r][l], a.K[r][l], b.K[r][l])
			}
		}
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func query(ctx *engine.Context, dataset, dir string, w selection.Window, full bool) (selection.Stats, error) {
	sch, ok := stdata.Lookup(dataset)
	if !ok {
		return selection.Stats{}, fmt.Errorf("unknown dataset %q", dataset)
	}
	q := sch.NewQuerier(ctx, selection.Config{Index: true})
	if full {
		return q.Select(dir, w)
	}
	return q.SelectPruned(dir, w)
}
