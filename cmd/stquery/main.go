// Command stquery runs an ad-hoc ST range selection against a dataset
// ingested with stload, reporting how much the metadata index pruned and
// how many records matched.
//
// Usage:
//
//	stquery -dir /data/nyc -dataset nyc \
//	    -minx -74.0 -miny 40.7 -maxx -73.9 -maxy 40.8 \
//	    -tstart 1357000000 -tend 1360000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

func main() {
	var (
		dir       = flag.String("dir", "", "dataset directory (required)")
		dataset   = flag.String("dataset", "nyc", "schema: "+strings.Join(stdata.SchemaNames(), "|"))
		minx      = flag.Float64("minx", -180, "window min longitude")
		miny      = flag.Float64("miny", -90, "window min latitude")
		maxx      = flag.Float64("maxx", 180, "window max longitude")
		maxy      = flag.Float64("maxy", 90, "window max latitude")
		tstart    = flag.Int64("tstart", 0, "window start (unix seconds)")
		tend      = flag.Int64("tend", 1<<60, "window end (unix seconds)")
		full      = flag.Bool("full-scan", false, "skip metadata pruning (native path)")
		metrics   = flag.Bool("metrics", false, "print the engine counter snapshot after the query")
		explain   = flag.Bool("explain", false, "print the aggregated execution report (partitions pruned, records, tasks, per-stage breakdown)")
		traceFile = flag.String("trace", "", "write a Chrome trace-event dump of the query to this file (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "stquery: -dir is required")
		os.Exit(2)
	}
	var tr *trace.Tracer
	if *explain || *traceFile != "" {
		tr = trace.New()
	}
	ctx := engine.New(engine.Config{Tracer: tr})
	w := selection.Window{
		Space: geom.Box(*minx, *miny, *maxx, *maxy),
		Time:  tempo.New(*tstart, *tend),
	}
	stats, err := query(ctx, *dataset, *dir, w, *full)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stquery:", err)
		os.Exit(1)
	}
	fmt.Printf("partitions: %d/%d loaded\nrecords: %d loaded, %d selected\nbytes read: %d\n",
		stats.LoadedPartitions, stats.TotalPartitions,
		stats.LoadedRecords, stats.SelectedRecords, stats.LoadedBytes)
	fmt.Printf("blocks: %d/%d scanned (%d pruned); %d bytes decompressed\n",
		stats.BlocksScanned, stats.BlocksTotal, stats.BlocksPruned, stats.DecompressedBytes)
	if stats.RecordsPruned > 0 {
		fmt.Printf("records pruned columnar: %d (v3 predicate, skipped before materialization)\n",
			stats.RecordsPruned)
	}
	if *metrics {
		// Same counters the server's /metrics and stbench report, so every
		// entry point speaks one metrics dialect.
		fmt.Println(ctx.Metrics.Snapshot())
	}
	if *explain {
		trace.Build(tr.Snapshot()).Fprint(os.Stdout)
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile, tr); err != nil {
			fmt.Fprintln(os.Stderr, "stquery:", err)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the tracer's spans as a Chrome trace file.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func query(ctx *engine.Context, dataset, dir string, w selection.Window, full bool) (selection.Stats, error) {
	sch, ok := stdata.Lookup(dataset)
	if !ok {
		return selection.Stats{}, fmt.Errorf("unknown dataset %q", dataset)
	}
	q := sch.NewQuerier(ctx, selection.Config{Index: true})
	if full {
		return q.Select(dir, w)
	}
	return q.SelectPruned(dir, w)
}
