// Command stload performs the offline preparation step of §4.1: it reads
// (or generates) a dataset, T-STR-partitions it, and persists the
// partitioned store with its metadata index, ready for metadata-pruned
// selection.
//
// Usage:
//
//	stload -dataset nyc -n 500000 -out /data/nyc -gt 16 -gs 8
//	stload -dataset porto -n 50000 -out /data/porto -compress
//	stload -dataset nyc -input events.csv -out /data/mine
//	stload -dataset nyc -input more.csv -out /data/mine -append
//	stload -dataset nyc -n 500000 -out /data/nyc2 -format v2 -compress
//
// -format selects the on-disk partition layout: v3 (default) lays blocks
// out as delta-compressed column streams, v2 is the row-major gzip-able
// block layout, v1 the legacy monolithic file.
//
// -input ingests external CSV data in the standard schemas (see package
// stdata): events as `id,lon,lat,time[,aux]`, trajectories as
// `id,"lon lat ...","t t ..."`.
//
// -append routes the records into an existing dataset through the storage
// delta layer instead of rebuilding it: small immutable delta files beside
// the base partitions, committed by an atomic manifest swap, merged on
// read and folded back in by compaction (see cmd/stingest for the
// continuous form).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/summary"
	"st4ml/internal/trace"
)

func main() {
	var (
		dataset   = flag.String("dataset", "nyc", "dataset schema: "+strings.Join(stdata.SchemaNames(), "|"))
		n         = flag.Int("n", 100_000, "record count when generating (events/trajectories/POIs)")
		input     = flag.String("input", "", "CSV file to ingest instead of generating (nyc/porto schemas)")
		out       = flag.String("out", "", "output dataset directory (required)")
		gt        = flag.Int("gt", 16, "T-STR temporal granularity")
		gs        = flag.Int("gs", 8, "T-STR spatial granularity")
		seed      = flag.Int64("seed", 1, "generator seed")
		compress  = flag.Bool("compress", false, "gzip partition data (per block on the v2 layout; ignored by v3)")
		blockRecs = flag.Int("block-records", 0, "records per storage block (0 = format default; smaller blocks prune harder on narrow queries)")
		v1        = flag.Bool("v1", false, "write the legacy v1 monolithic partition layout (shorthand for -format=v1)")
		formatF   = flag.String("format", "", "storage format: v1|v2|v3 (default: current, v3 columnar)")
		noCluster = flag.Bool("no-cluster", false, "skip the in-partition Z-order sort (blocks keep arrival order; pruning degrades)")
		slots     = flag.Int("slots", 0, "executor slots (0 = GOMAXPROCS)")
		traceFile = flag.String("trace", "", "write a Chrome trace-event dump of the ingest to this file")
		appendTo  = flag.Bool("append", false, "append to the existing dataset at -out via the delta layer instead of rebuilding it")
		batchID   = flag.String("batch", "", "idempotency id for -append: re-running with the same id is a no-op")
		summaries = flag.Bool("summaries", false, "build approximate-query summary sidecars after writing (compaction keeps them current afterwards)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "stload: -out is required")
		os.Exit(2)
	}
	sch, ok := stdata.Lookup(*dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "stload: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	var tr *trace.Tracer
	if *traceFile != "" {
		tr = trace.New()
	}
	ctx := engine.New(engine.Config{Slots: *slots, Tracer: tr})
	opts := selection.IngestOptions{
		Name: *dataset, Compress: *compress, SampleFrac: 0.02, Seed: *seed,
		BlockRecords: *blockRecs, NoCluster: *noCluster,
	}
	if *v1 {
		opts.Version = 1
	}
	switch *formatF {
	case "":
	case "v1":
		opts.Version = 1
	case "v2":
		opts.Version = 2
	case "v3":
		opts.Version = 3
	default:
		fmt.Fprintf(os.Stderr, "stload: unknown -format %q (want v1, v2 or v3)\n", *formatF)
		os.Exit(2)
	}
	var (
		recs any
		err  error
	)
	if *input != "" {
		recs, err = readCSV(sch, *input)
	} else {
		recs = generate(*dataset, *n, *seed)
	}
	if *appendTo {
		if err != nil {
			fmt.Fprintln(os.Stderr, "stload:", err)
			os.Exit(1)
		}
		gen, err := sch.Append(recs, *out, *batchID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stload:", err)
			os.Exit(1)
		}
		meta, err := storage.ReadMetadata(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stload:", err)
			os.Exit(1)
		}
		fmt.Printf("stload: appended to %s (generation %d, %d records, %d live deltas)\n",
			*out, gen, meta.TotalCount, meta.DeltaCount())
		if *summaries {
			buildSummaries(sch, *out)
		}
		return
	}
	var meta *storage.Metadata
	if err == nil {
		meta, err = sch.Ingest(ctx, recs, *out, sch.DefaultPlanner(*gt, *gs), opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stload:", err)
		os.Exit(1)
	}
	format := "v1"
	if meta.Version >= 2 {
		format = fmt.Sprintf("v%d, %d records/block", meta.Version, meta.BlockRecords)
	}
	fmt.Printf("stload: wrote %d records in %d partitions to %s (%s)\n",
		meta.TotalCount, meta.NumPartitions(), *out, format)
	if *summaries {
		buildSummaries(sch, *out)
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile, tr); err != nil {
			fmt.Fprintln(os.Stderr, "stload:", err)
			os.Exit(1)
		}
	}
}

// buildSummaries backfills summary sidecars for the dataset and reports
// how many partitions were summarized.
func buildSummaries(sch stdata.Schema, dir string) {
	n, err := sch.BuildSummaries(dir, summary.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stload:", err)
		os.Exit(1)
	}
	fmt.Printf("stload: summarized %d partitions (approximate queries answer from sidecars)\n", n)
}

// writeTrace dumps the tracer's spans as a Chrome trace file.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// generate produces n synthetic records of the named schema. Generator
// signatures differ per corpus, so this stays a switch; everything
// downstream goes through the stdata registry.
func generate(dataset string, n int, seed int64) any {
	switch dataset {
	case "nyc":
		return datagen.NYC(n, seed)
	case "porto":
		return datagen.Porto(n, seed)
	case "air":
		return datagen.Air(n, 4, 7, 1800, seed)
	case "osm":
		pois, _ := datagen.OSM(n, 1, seed)
		return pois
	}
	return nil
}

// readCSV opens path and parses it with the schema's CSV reader.
func readCSV(sch stdata.Schema, path string) (any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sch.ReadCSV(f)
}
