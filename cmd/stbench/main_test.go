package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"st4ml/internal/bench"
	"st4ml/internal/engine"
)

// TestRunAllTiny smoke-tests the whole driver at a tiny scale — every
// experiment must produce output without error.
func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	// Redirect stdout noise away from test output? The driver prints to
	// stdout; that is fine under go test.
	var jsonBuf bytes.Buffer
	err := run("all", engine.Config{Slots: 2}, bench.Scale{
		Events: 5_000, Trajs: 500, POIs: 2_000, Areas: 36, AirSta: 3,
	}, 2, 4, dir, &jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	// -json captured machine-readable rows for the perf-trajectory file.
	for _, exp := range []string{`"exp":"fig5"`, `"exp":"blocks"`, `"exp":"serve"`} {
		if !strings.Contains(jsonBuf.String(), exp) {
			t.Errorf("json output missing %s rows", exp)
		}
	}
	// Work dir persisted stores.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Errorf("no stores created: %v", err)
	}
}

func TestRunSingleExperiments(t *testing.T) {
	if err := run("table8", engine.Config{Slots: 2}, bench.Scale{}, 1, 2, t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
	if err := run("table9", engine.Config{Slots: 2}, bench.Scale{}, 1, 2, t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
	if err := run("serve", engine.Config{Slots: 2}, bench.Scale{Events: 4_000}, 2, 3, t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunUnderChaosPlan mirrors the -chaos flag: an experiment driven under
// a transient fault plan must still complete.
func TestRunUnderChaosPlan(t *testing.T) {
	cfg := engine.Config{
		Slots: 2, Speculation: true,
		Faults: &engine.FaultPlan{Seed: 1, FailRate: 0.1, CorruptRate: 0.1},
	}
	if err := run("table9", cfg, bench.Scale{}, 1, 2, t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	if err := run("nonsense", engine.Config{Slots: 2}, bench.Scale{}, 1, 2, t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
}
