package main

import (
	"os"
	"testing"

	"st4ml/internal/bench"
)

// TestRunAllTiny smoke-tests the whole driver at a tiny scale — every
// experiment must produce output without error.
func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	// Redirect stdout noise away from test output? The driver prints to
	// stdout; that is fine under go test.
	err := run("all", bench.Scale{
		Events: 5_000, Trajs: 500, POIs: 2_000, Areas: 36, AirSta: 3,
	}, 2, 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Work dir persisted stores.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Errorf("no stores created: %v", err)
	}
}

func TestRunSingleExperiments(t *testing.T) {
	if err := run("table8", bench.Scale{}, 1, 2, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := run("table9", bench.Scale{}, 1, 2, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	if err := run("nonsense", bench.Scale{}, 1, 2, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
