// Command stbench regenerates the paper's evaluation tables and figures
// (§5–§6) against the synthetic corpora and prints them as text tables.
//
// Usage:
//
//	stbench -exp all
//	stbench -exp fig7 -events 500000 -trajs 50000 -windows 10
//	stbench -exp table8
//
// Absolute times reflect this machine and the laptop-scale corpora; the
// shapes (who wins, by what factor) are what reproduce the paper. See
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"st4ml/internal/bench"
	"st4ml/internal/engine"
	"st4ml/internal/trace"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: fig5|blocks|encode|compact|approx|pointpat|fig6|table5|table6|fig7|table8|fig9|table9|ablation|fig7sweep|serve|cluster|subscribe|all")
		events    = flag.Int("events", 200_000, "NYC-like event count")
		trajs     = flag.Int("trajs", 20_000, "Porto-like trajectory count")
		pois      = flag.Int("pois", 100_000, "OSM-like POI count")
		areas     = flag.Int("areas", 400, "OSM-like area count")
		airSta    = flag.Int("airsta", 40, "air-quality stations (before x4 replication)")
		windows   = flag.Int("windows", 10, "query windows per application")
		clients   = flag.Int("clients", 8, "concurrent HTTP clients for -exp serve")
		slots     = flag.Int("slots", 0, "executor slots (0 = GOMAXPROCS)")
		workdir   = flag.String("workdir", "", "work directory for stores (default: temp)")
		spec      = flag.Bool("speculation", false, "speculatively re-execute straggler tasks")
		chaos     = flag.Int64("chaos", 0, "fault-injection seed (0 = off): run under a 10% transient task-failure/corruption plan to exercise retries")
		traceFile = flag.String("trace", "", "write a Chrome trace-event dump of the whole run to this file")
		jsonFile  = flag.String("json", "", "append machine-readable result rows (one JSON object per line) to this file")
	)
	flag.Parse()
	cfg := engine.Config{Slots: *slots, Speculation: *spec}
	if *chaos != 0 {
		cfg.Faults = &engine.FaultPlan{
			Seed: *chaos, FailRate: 0.1, CorruptRate: 0.1,
		}
	}
	var tr *trace.Tracer
	if *traceFile != "" {
		// Every experiment funnels through one Context, so one tracer on the
		// engine config captures the whole invocation.
		tr = trace.New()
		cfg.Tracer = tr
	}
	var jsonOut *os.File
	if *jsonFile != "" {
		f, err := os.OpenFile(*jsonFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		jsonOut = f
	}
	err := run(*exp, cfg, bench.Scale{
		Events: *events, Trajs: *trajs, POIs: *pois, Areas: *areas, AirSta: *airSta,
	}, *windows, *clients, *workdir, jsonOut)
	if err == nil && *traceFile != "" {
		err = writeTrace(*traceFile, tr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stbench:", err)
		os.Exit(1)
	}
}

// writeTrace dumps the tracer's spans as a Chrome trace file.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(exp string, cfg engine.Config, scale bench.Scale, windows, clients int, workdir string, jsonOut io.Writer) error {
	want := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	// emit appends one machine-readable row per result to -json, so
	// successive runs build a perf trajectory across commits.
	emit := func(exp string, row any) error {
		if jsonOut == nil {
			return nil
		}
		return bench.WriteJSONRow(jsonOut, exp, row)
	}
	ctx := engine.New(cfg)
	// Every experiment path below funnels through ctx, so the counter table
	// printed on exit aggregates the whole invocation.
	defer func() {
		bench.EngineCountersTable(ctx.Metrics.Snapshot()).Fprint(os.Stdout)
	}()

	// Table 8 needs no environment.
	if all || want["table8"] {
		rows, err := bench.Table8()
		if err != nil {
			return err
		}
		bench.Table8Table(rows).Fprint(os.Stdout)
	}
	// Case studies need only the synthetic city.
	if all || want["fig9"] || want["table9"] {
		city := bench.NewCaseStudyCity()
		if all || want["fig9"] {
			bench.Fig9Table(bench.Fig9(ctx, city, 7, 300)).Fprint(os.Stdout)
		}
		if all || want["table9"] {
			bench.Table9Table(bench.Table9(ctx, city, 2, 400)).Fprint(os.Stdout)
		}
	}
	// The point-pattern benchmark runs on in-memory corpora — no store, no
	// environment — so it precedes the workdir setup.
	if all || want["pointpat"] {
		rows, err := bench.PointPat(ctx, []int{2000, 5000, 12000}, 8)
		if err != nil {
			return err
		}
		bench.PointPatTable(rows).Fprint(os.Stdout)
		for _, row := range rows {
			if err := bench.WriteJSONRow(os.Stdout, "pointpat", row); err != nil {
				return err
			}
			if err := emit("pointpat", row); err != nil {
				return err
			}
		}
	}
	needEnv := all || want["fig5"] || want["blocks"] || want["encode"] || want["compact"] ||
		want["fig6"] || want["table5"] || want["table6"] || want["fig7"] || want["ablation"] ||
		want["fig7sweep"]
	if !needEnv && !want["serve"] && !want["cluster"] && !want["subscribe"] && !want["approx"] {
		return nil
	}

	if workdir == "" {
		dir, err := os.MkdirTemp("", "stbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		workdir = dir
	}

	// The serving benchmark builds its own (smaller) store; it does not need
	// the full multi-system environment.
	if all || want["serve"] {
		res, err := bench.Serve(ctx, workdir, scale.Events/2, clients, windows)
		if err != nil {
			return err
		}
		bench.ServeTable(res).Fprint(os.Stdout)
		if err := bench.WriteJSONRow(os.Stdout, "serve", res); err != nil {
			return err
		}
		if err := emit("serve", res); err != nil {
			return err
		}
	}
	// The approximate-tier benchmark compares summary-sidecar aggregates
	// against the exact scan path at 1%/10%/50% selectivity; it builds its
	// own summarized store.
	if all || want["approx"] {
		rows, err := bench.Approx(ctx, workdir, scale.Events/2, windows,
			[]float64{0.01, 0.1, 0.5})
		if err != nil {
			return err
		}
		bench.ApproxTable(rows).Fprint(os.Stdout)
		for _, row := range rows {
			if err := bench.WriteJSONRow(os.Stdout, "approx", row); err != nil {
				return err
			}
			if err := emit("approx", row); err != nil {
				return err
			}
		}
	}
	// The push-path benchmark fans committed delta batches out to standing
	// subscriptions; like serve, it builds its own store per subscriber count.
	if all || want["subscribe"] {
		rows, err := bench.Subscribe(ctx, workdir, scale.Events/2, 8, 2000, []int{1, 16, 256})
		if err != nil {
			return err
		}
		bench.SubscribeTable(rows).Fprint(os.Stdout)
		for _, row := range rows {
			if err := bench.WriteJSONRow(os.Stdout, "subscribe", row); err != nil {
				return err
			}
			if err := emit("subscribe", row); err != nil {
				return err
			}
		}
	}
	// The cluster benchmark compares a lone daemon against routed 2- and
	// 4-shard fleets over one store; like serve, it builds its own.
	if all || want["cluster"] {
		rows, err := bench.Cluster(ctx, workdir, scale.Events/2, clients, windows)
		if err != nil {
			return err
		}
		bench.ClusterTable(rows).Fprint(os.Stdout)
		for _, row := range rows {
			if err := bench.WriteJSONRow(os.Stdout, "cluster", row); err != nil {
				return err
			}
			if err := emit("cluster", row); err != nil {
				return err
			}
		}
	}
	if !needEnv {
		return nil
	}
	fmt.Fprintf(os.Stderr, "stbench: preparing corpora (events=%d trajs=%d pois=%d) ...\n",
		scale.Events, scale.Trajs, scale.POIs)
	env, err := bench.NewEnv(ctx, workdir, scale)
	if err != nil {
		return err
	}

	if all || want["fig5"] {
		rows := bench.Fig5(env, []float64{0.05, 0.1, 0.2, 0.4, 0.8}, windows)
		bench.Fig5Table(rows).Fprint(os.Stdout)
		for _, r := range rows {
			if err := emit("fig5", r); err != nil {
				return err
			}
		}
	}
	// The storage-format comparison rides with fig5: same selection shape,
	// but v1 vs v2 on-disk layouts instead of native vs indexed paths.
	if all || want["fig5"] || want["blocks"] {
		rows, err := bench.FigBlocks(env, workdir, []float64{0.05, 0.1, 0.2, 0.4, 0.8}, windows)
		if err != nil {
			return err
		}
		bench.FigBlocksTable(rows).Fprint(os.Stdout)
		for _, r := range rows {
			if err := emit("blocks", r); err != nil {
				return err
			}
		}
	}
	// The storage-format-v3 headline: all three generations at their
	// defaults under the same window workload, with the v2-gzip/v3 ratios
	// summarized for the smallest range fraction.
	if all || want["encode"] {
		rows, sum, err := bench.EncodeBench(env, workdir, []float64{0.01, 0.05, 0.1, 0.4}, windows)
		if err != nil {
			return err
		}
		bench.EncodeTable(rows).Fprint(os.Stdout)
		bench.EncodeSummaryTable(sum).Fprint(os.Stdout)
		for _, r := range rows {
			if err := emit("encode", r); err != nil {
				return err
			}
		}
		if err := emit("encode_summary", sum); err != nil {
			return err
		}
	}
	// The delta-layer experiment: the same corpus queried as one-shot
	// rebuild, base+streamed deltas, and post-compaction, with the selected
	// counts cross-checked between the three states.
	if all || want["compact"] {
		rows, sum, err := bench.CompactExp(env, workdir, []float64{0.05, 0.1, 0.2, 0.4, 0.8}, windows, 8)
		if err != nil {
			return err
		}
		bench.FigCompactTable(rows).Fprint(os.Stdout)
		bench.CompactSummaryTable(sum).Fprint(os.Stdout)
		for _, r := range rows {
			if err := emit("compact", r); err != nil {
				return err
			}
		}
		if err := emit("compact_summary", sum); err != nil {
			return err
		}
	}
	if all || want["fig6"] {
		rows := bench.Fig6(env, []int{16, 64, 256}, []int{4, 8, 16}, []int{4, 8, 12})
		bench.Fig6Table(rows).Fprint(os.Stdout)
	}
	if all || want["table5"] {
		rows := bench.Table5(env, 1024, 32, 32)
		bench.Table5Table(rows).Fprint(os.Stdout)
	}
	if all || want["table6"] {
		res, err := bench.Table6(env, workdir, 64, windows)
		if err != nil {
			return err
		}
		bench.Table6Table(res).Fprint(os.Stdout)
	}
	if all || want["fig7"] {
		rows, err := bench.Fig7(env, bench.AllApps, bench.AllSystems, 0.3, windows)
		if err != nil {
			return err
		}
		bench.Fig7Table(rows).Fprint(os.Stdout)
	}
	if all || want["ablation"] {
		bench.AblationTable(env, workdir).Fprint(os.Stdout)
	}
	// The data-scale sweep rebuilds sub-environments, so it runs only when
	// asked for explicitly.
	if want["fig7sweep"] {
		rows, err := bench.Fig7Sweep(ctx, workdir, scale,
			[]float64{0.25, 0.5, 1.0}, bench.AllApps, bench.AllSystems, 0.3, windows)
		if err != nil {
			return err
		}
		bench.Fig7SweepTable(rows).Fprint(os.Stdout)
	}
	return nil
}
