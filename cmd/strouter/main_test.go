package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"st4ml/internal/cluster"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// TestClusterSmoke is the make-check smoke gate for multi-node serving: two
// shard daemons plus a router on loopback, one spatially selective query,
// and the explain must show the scatter touched fewer shards than the map
// holds — the router prunes before it fans out.
func TestClusterSmoke(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := stdata.Lookup("nyc")
	dir := t.TempDir()
	meta, err := sch.Ingest(ctx, datagen.NYC(2000, 3), dir, sch.DefaultPlanner(4, 2),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	var shardURLs []string
	for i := 0; i < 2; i++ {
		srv := serve.NewServer(serve.Config{Ctx: ctx, ShardName: fmt.Sprintf("s%d", i)})
		if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		shardURLs = append(shardURLs, ts.URL)
	}

	m, err := cluster.ParseShards(shardURLs[0] + ";" + shardURLs[1])
	if err != nil {
		t.Fatal(err)
	}
	r, err := build([]string{"nyc=" + dir}, cluster.Config{Shards: m})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(r.Handler())
	defer router.Close()

	// A selective window: probe until the pruned partition set lands on a
	// single shard, so the scatter width must come out below the shard
	// count.
	q, ok := selectiveWindow(meta, m)
	if !ok {
		t.Fatal("no probed window prunes to a single shard")
	}
	q.Records = true
	q.Explain = true
	b, _ := json.Marshal(q)
	resp, err := http.Post(router.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed query status %d", resp.StatusCode)
	}
	var out serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.SelectedRecords == 0 {
		t.Fatal("selective window matched nothing")
	}
	if out.Explain == nil || out.Explain.Scatter == nil {
		t.Fatal("routed explain missing scatter block")
	}
	sc := out.Explain.Scatter
	if sc.Shards != 2 {
		t.Fatalf("scatter shards %d, want 2", sc.Shards)
	}
	if sc.Width >= sc.Shards {
		t.Fatalf("scatter width %d not below shard count %d: pruning did not narrow the fan-out", sc.Width, sc.Shards)
	}
	if out.Explain.PrunedPartitions == 0 {
		t.Fatal("explain shows no partition pruning")
	}

	// The fleet is observable: router metrics count the scatter.
	mresp, err := http.Get(router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics cluster.MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Router.Queries != 1 || metrics.Router.RPCs != 1 {
		t.Fatalf("router metrics: %+v", metrics.Router)
	}
}

// selectiveWindow probes seeded sub-windows of the NYC extent until one
// prunes to a non-empty partition set owned by a single shard.
func selectiveWindow(meta *storage.Metadata, m cluster.ShardMap) (serve.QueryRequest, bool) {
	rng := rand.New(rand.NewSource(17))
	ext, yr := datagen.NYCExtent, datagen.Year2013
	dx, dy := ext.MaxX-ext.MinX, ext.MaxY-ext.MinY
	dt := yr.End - yr.Start
	for try := 0; try < 200; try++ {
		f := 0.03 + 0.1*rng.Float64()
		x0 := ext.MinX + rng.Float64()*(1-f)*dx
		y0 := ext.MinY + rng.Float64()*(1-f)*dy
		t0 := yr.Start + int64(rng.Float64()*0.8*float64(dt))
		q := serve.QueryRequest{
			Dataset: "nyc",
			MinX:    x0, MaxX: x0 + f*dx,
			MinY: y0, MaxY: y0 + f*dy,
			TStart: t0, TEnd: t0 + dt/12,
		}
		ids := meta.Prune(q.Window().Space, q.Window().Time)
		if len(ids) == 0 {
			continue
		}
		owners := map[int]bool{}
		for _, id := range ids {
			owners[m.Assign(id)] = true
		}
		if len(owners) == 1 {
			return q, true
		}
	}
	return serve.QueryRequest{}, false
}

func TestLoadTopology(t *testing.T) {
	if _, err := loadTopology("", ""); err == nil {
		t.Fatal("no topology accepted")
	}
	if _, err := loadTopology("http://a", "x.json"); err == nil {
		t.Fatal("both flags accepted")
	}
	m, err := loadTopology("http://a,http://b;http://c", "")
	if err != nil || len(m.Shards) != 2 || len(m.Shards[0].Replicas) != 2 {
		t.Fatalf("topology %+v, err %v", m, err)
	}
}

func TestRouterBuildRequiresDatasets(t *testing.T) {
	m, _ := cluster.ParseShards("http://a")
	if _, err := build(nil, cluster.Config{Shards: m}); err == nil {
		t.Fatal("router with no datasets accepted")
	}
	if _, err := build([]string{"bad"}, cluster.Config{Shards: m}); err == nil {
		t.Fatal("bad dataset spec accepted")
	}
}
