// Command strouter is the cluster query router: a stateless coordinator
// that fronts a fleet of stserved shards, scatters each window query over
// the shards whose partitions survive the metadata prune, hedges slow
// replicas, and merges the per-partition chunks back into a response that
// is byte-identical to a single daemon's (see package cluster).
//
// Usage:
//
//	stserved -addr :7071 -shard-name s0 -dataset nyc=/data/nyc &
//	stserved -addr :7072 -shard-name s1 -dataset nyc=/data/nyc &
//	strouter -addr :8080 -dataset nyc=/data/nyc \
//	    -shards 'http://localhost:7071;http://localhost:7072'
//	curl -s localhost:8080/query -d '{"dataset":"nyc", ...}'
//
// The topology comes from -shards (';' separates shards, ',' separates a
// shard's replicas) or from a -shard-map JSON file:
//
//	{"shards": [{"name": "s0", "replicas": ["http://a:7071", "http://b:7071"]}]}
//
// The router plans from the same dataset directories the shards serve
// (it reads only metadata, never partition data), so -dataset takes the
// same name=dir or name:schema=dir specs as stserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"st4ml/internal/cluster"
	"st4ml/internal/serve"
)

// datasetFlags collects repeated -dataset specs.
type datasetFlags []string

func (d *datasetFlags) String() string     { return strings.Join(*d, ",") }
func (d *datasetFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var datasets datasetFlags
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		shards         = flag.String("shards", "", "shard endpoints: ';' separates shards, ',' separates replicas")
		shardMap       = flag.String("shard-map", "", "shard map JSON file (alternative to -shards)")
		timeout        = flag.Duration("timeout", 30*time.Second, "per-query deadline")
		shardTimeout   = flag.Duration("shard-timeout", 0, "per-sub-query attempt deadline (0 = -timeout)")
		hedgeAfter     = flag.Duration("hedge-after", 0, "hedge a sub-query on another replica after this silence (0 disables)")
		maxAttempts    = flag.Int("max-attempts", 0, "attempt bound per shard RPC (0 = 2x replicas)")
		maxReplans     = flag.Int("max-replans", 0, "generation-conflict replan bound per query (0 = 3)")
		cacheBytes     = flag.Int64("cache-bytes", 64<<20, "merged-result cache budget (negative disables)")
		drainTimeout   = flag.Duration("drain-timeout", 10*time.Second, "in-flight request budget after SIGTERM before connections close hard")
		healthInterval = flag.Duration("health-interval", 5*time.Second, "replica readiness probe interval")
	)
	flag.Var(&datasets, "dataset", "plan over a dataset: name=dir or name:schema=dir (repeatable)")
	flag.Parse()

	m, err := loadTopology(*shards, *shardMap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strouter:", err)
		os.Exit(2)
	}
	r, err := build(datasets, cluster.Config{
		Shards:       m,
		CacheBytes:   *cacheBytes,
		Timeout:      *timeout,
		ShardTimeout: *shardTimeout,
		HedgeAfter:   *hedgeAfter,
		MaxAttempts:  *maxAttempts,
		MaxReplans:   *maxReplans,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "strouter:", err)
		os.Exit(2)
	}
	for _, info := range r.Catalog().List() {
		fmt.Printf("strouter: routing %s (%s schema): %d records in %d partitions\n",
			info.Name, info.Schema, info.Records, info.Partitions)
	}
	for _, sh := range m.Shards {
		fmt.Printf("strouter: shard %s: %s\n", sh.Name, strings.Join(sh.Replicas, ", "))
	}
	stop := r.StartHealth(*healthInterval)
	defer stop()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "strouter: "+format+"\n", args...)
	}
	fmt.Printf("strouter: listening on %s (%d shards)\n", *addr, len(m.Shards))
	if err := serve.Graceful(serve.GracefulConfig{
		Addr:         *addr,
		Handler:      r.Handler(),
		Drainer:      r,
		DrainTimeout: *drainTimeout,
		Logf:         logf,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "strouter:", err)
		os.Exit(1)
	}
}

// loadTopology resolves the shard map from whichever flag was given.
func loadTopology(shards, shardMapPath string) (cluster.ShardMap, error) {
	switch {
	case shards != "" && shardMapPath != "":
		return cluster.ShardMap{}, fmt.Errorf("pass -shards or -shard-map, not both")
	case shards != "":
		return cluster.ParseShards(shards)
	case shardMapPath != "":
		return cluster.LoadShardMap(shardMapPath)
	default:
		return cluster.ShardMap{}, fmt.Errorf("a topology is required: -shards 'url;url' or -shard-map file.json")
	}
}

// build assembles the router from the flag values.
func build(datasets []string, cfg cluster.Config) (*cluster.Router, error) {
	r, err := cluster.NewRouter(cfg)
	if err != nil {
		return nil, err
	}
	for _, spec := range datasets {
		name, schema, dir, err := parseDatasetSpec(spec)
		if err != nil {
			return nil, err
		}
		if err := r.AddDataset(name, schema, dir); err != nil {
			return nil, err
		}
	}
	if len(r.Catalog().List()) == 0 {
		return nil, fmt.Errorf("nothing to route: pass -dataset name=dir")
	}
	return r, nil
}

// parseDatasetSpec splits "name=dir" or "name:schema=dir".
func parseDatasetSpec(spec string) (name, schema, dir string, err error) {
	key, dir, ok := strings.Cut(spec, "=")
	if !ok || key == "" || dir == "" {
		return "", "", "", fmt.Errorf("bad -dataset %q, want name=dir or name:schema=dir", spec)
	}
	name, schema, ok = strings.Cut(key, ":")
	if !ok {
		schema = name
	}
	return name, schema, dir, nil
}
