module st4ml

go 1.22
